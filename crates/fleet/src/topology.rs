//! The hierarchical radio network: RNCs over cells, population-scale
//! signaling load on the network side (the paper's §7/§8 open question,
//! at fleet scale).
//!
//! A [`NetworkTopology`] partitions a fleet's users across base-station
//! cells and groups the cells under radio network controllers (RNCs) —
//! the two-level hierarchy where the paper's energy/signaling trade-off
//! is actually adjudicated. Every fast-dormancy request passes **two**
//! pluggable [`AdmissionSpec`] gates: its cell's, then — if the cell
//! forwards it — its RNC's. Both levels carry a
//! [`SignalingBudget`] for overload accounting, and the run reports
//! what each element absorbed: per-cell [`CellLoad`] and per-RNC
//! [`RncLoad`] (grants, denials, denials attributable to the RNC,
//! total RRC messages, per-second peak, overload seconds).
//!
//! ## The two-pass fleet runner
//!
//! The execution is the fleet-scale instance of the two-phase engine
//! API ([`tailwise_sim::twophase`]):
//!
//! 1. **Pass 1** — the sharded runner streams every user through the
//!    cheap phase-1 request scan ([`Scheme::request_trace`]): one trace
//!    materialized per worker, dropped immediately, only the
//!    time-stamped request stream kept.
//! 2. **Adjudication** — per RNC, the member users' (already
//!    time-sorted) request streams are **k-way merged** into one
//!    `(time, user, seq)`-ordered stream and fed through fresh
//!    admission-policy instances: the request's cell decides first,
//!    then the RNC; a denial at either level denies. Every verdict's
//!    adjudication-time message cost (`per_fd_demotion` per grant,
//!    [`REQUEST_MESSAGES`] per denial) is observed by both levels, so
//!    load-reactive policies see the rate they are protecting.
//! 3. **Pass 2** — the sharded runner *re-materializes* each user's
//!    trace (synthesis and corpus walks are deterministic, so the same
//!    index yields the same trace) and replays it exactly against its
//!    scripted verdicts ([`Scheme::run_scripted`]), folding energy into
//!    the [`FleetReport`] and RRC-message events into per-cell
//!    per-second load maps; RNC loads fold from their member cells.
//!
//! Peak memory stays **one trace per worker** in both passes — the
//! re-synthesis/re-load is exactly what buys that bound. Between the
//! passes the run holds O(total requests) timestamps and, afterwards,
//! one verdict byte per request plus O(active seconds) load counters
//! per cell.
//!
//! ## Determinism
//!
//! User→cell assignment is a pure function of `(master_seed, user
//! index, cell count)` ([`cell_of`]) — and, under a mobility model, of
//! time as well ([`NetworkTopology::user_cell`], the one seam both
//! passes resolve membership through; see [`crate::mobility`]); cells
//! map to RNCs in contiguous blocks ([`rnc_of_cell`]); the k-way merge
//! (static) or the per-RNC event sort (mobile) realizes the total
//! `(time, user, kind)` order; admission policies are deterministic by
//! contract; per-second load counters are integer adds. With the
//! frontier merging shard partials in shard order, a topology run is
//! bit-identical at any thread count — the same contract the
//! radio-isolated runner makes, pinned by `tests/cell_fleet.rs` and
//! `tests/mobility_fleet.rs`.
//!
//! ## Scheme restrictions
//!
//! Network topologies require a *scriptable* scheme
//! ([`Scheme::scriptable`]): the MakeActive variants batch sessions
//! based on the radio being Idle — i.e. on earlier grant outcomes — so
//! their two-pass replay would not be exact. Scenario files reject the
//! combination at parse time with a positioned error; programmatic
//! misuse panics here.

use std::collections::{BTreeMap, BinaryHeap};
use std::sync::Arc;

use tailwise_core::schemes::Scheme;
use tailwise_obs::{span, Obs};
use tailwise_radio::admission::{AdmissionPolicy, REQUEST_MESSAGES};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::{SignalingBudget, SignalingModel};
use tailwise_scenfile::ScenError;
use tailwise_sim::engine::SimConfig;
use tailwise_trace::corpus::Corpus;
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Instant;
use tailwise_trace::Trace;

use crate::admission::AdmissionSpec;
use crate::cache::{topo_hash, verdict_hash, Fingerprint, ReplayEntry, RequestCache};
use crate::mobility::MobilitySpec;
use crate::report::{CellLoad, FleetReport, FleetSignaling, RncLoad};
use crate::runner::{days_spanned, load_corpus_trace, run_sharded, Partial};
use crate::scenario::{draw_carrier, user_seed, Scenario};
use crate::source::CorpusScenario;

/// A fleet's radio network: how many RNCs and cells, what each level
/// can absorb, and how each level admits fast-dormancy requests.
///
/// Part of the scenario's deterministic identity (and of the on-disk
/// format, as the `[cells]` and `[rnc]` tables — see
/// `docs/SCENARIO_FORMAT.md` §6).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkTopology {
    /// Number of RNCs (≥ 1, ≤ `cells`). Cells map to RNCs in
    /// contiguous, near-equal blocks ([`rnc_of_cell`]).
    pub rncs: u64,
    /// Number of cells (≥ 1). Users are assigned by [`cell_of`].
    pub cells: u64,
    /// Per-cell RRC message budget (overload accounting only —
    /// admission is the policies' job).
    pub cell_budget: SignalingBudget,
    /// Per-RNC RRC message budget, against the summed load of the
    /// RNC's member cells.
    pub rnc_budget: SignalingBudget,
    /// Per-cell admission policy for fast-dormancy requests.
    pub cell_admission: AdmissionSpec,
    /// RNC-level admission policy, consulted for every request its
    /// cells forward.
    pub rnc_admission: AdmissionSpec,
    /// RRC message weights per transition kind. Not expressible in
    /// scenario files (they always use the default); `to_file` refuses
    /// a customized model rather than silently dropping it.
    pub signaling: SignalingModel,
    /// How users move between cells over time.
    /// [`MobilitySpec::Static`] (the default) reproduces the fixed
    /// [`cell_of`] assignment bit-identically — rendered text included;
    /// commute mobility makes membership piecewise over time and
    /// generates handoff signaling (the `[mobility]` table, see
    /// `docs/SCENARIO_FORMAT.md`).
    pub mobility: MobilitySpec,
}

impl NetworkTopology {
    /// A flat topology: one RNC over `cells` always-admitting,
    /// unbounded-budget cells.
    ///
    /// # Panics
    /// If `cells` is zero.
    pub fn new(cells: u64) -> NetworkTopology {
        assert!(cells >= 1, "a network topology needs at least one cell");
        NetworkTopology {
            rncs: 1,
            cells,
            cell_budget: SignalingBudget::UNBOUNDED,
            rnc_budget: SignalingBudget::UNBOUNDED,
            cell_admission: AdmissionSpec::Always,
            rnc_admission: AdmissionSpec::Always,
            signaling: SignalingModel::default(),
            mobility: MobilitySpec::Static,
        }
    }

    /// A hierarchy of `cells` cells in contiguous blocks under `rncs`
    /// RNCs, everything always-admitting and unbounded.
    ///
    /// # Panics
    /// If `rncs` is zero or exceeds `cells`.
    pub fn with_rncs(rncs: u64, cells: u64) -> NetworkTopology {
        let mut topology = NetworkTopology::new(cells);
        assert!(rncs >= 1, "a network topology needs at least one RNC");
        assert!(rncs <= cells, "cannot spread {cells} cell(s) over {rncs} RNCs");
        topology.rncs = rncs;
        topology
    }

    /// The cell user `index` occupies at `at` — **the** assignment seam
    /// both topology passes share: pass-1 adjudication resolves every
    /// request (and handoff) through it, and pass-2 load attribution
    /// folds every transition into the cell it names. A pure function
    /// of its arguments (see [`MobilitySpec::cell_at`]), so any worker
    /// computes the same answer.
    pub fn user_cell(&self, master_seed: u64, index: u64, at: Instant) -> u64 {
        self.mobility.cell_at(master_seed, index, self.cells, at)
    }

    /// The user's anchor cell — [`cell_of`] under every mobility model.
    /// Per-cell `users` counts key on it, so population shares stay
    /// comparable between static and mobile runs of the same fleet.
    pub fn home_cell(&self, master_seed: u64, index: u64) -> u64 {
        cell_of(master_seed, index, self.cells)
    }

    /// Asserts the count invariants programmatic construction can
    /// violate (scenario files reject them at parse time).
    fn validate_counts(&self) {
        assert!(self.cells >= 1, "a network topology needs at least one cell");
        assert!(self.rncs >= 1, "a network topology needs at least one RNC");
        assert!(
            self.rncs <= self.cells,
            "cannot spread {} cell(s) over {} RNCs",
            self.cells,
            self.rncs
        );
    }
}

/// The deterministic user→cell assignment: a pure function of the
/// scenario master seed, the user index, and the cell count.
///
/// Derived from [`user_seed`] with an extra mixing round so cell
/// assignment does not correlate with any draw the user's own RNG makes
/// (carrier, app mix, trace). The modulo over a well-mixed 64-bit hash
/// gives each cell a near-uniform share; the bias for any realistic
/// cell count is < 2⁻⁵⁰ and, crucially, identical on every machine.
pub fn cell_of(master_seed: u64, index: u64, cells: u64) -> u64 {
    assert!(cells >= 1, "a network topology needs at least one cell");
    splitmix(user_seed(master_seed, index) ^ 0xCE11_BA5E_0000_0000) % cells
}

/// The deterministic cell→RNC assignment: contiguous near-equal blocks
/// (`cell * rncs / cells`), so RNC `r` owns cells
/// `[⌈r·cells/rncs⌉, ⌈(r+1)·cells/rncs⌉)` and reports read naturally.
pub fn rnc_of_cell(cell: u64, cells: u64, rncs: u64) -> u64 {
    assert!(rncs >= 1 && rncs <= cells, "cannot spread {cells} cell(s) over {rncs} RNCs");
    assert!(cell < cells, "cell {cell} out of range for {cells} cell(s)");
    // cells ≤ realistic topology sizes, so the product cannot overflow
    // u128; go wide to keep the assignment exact for any u64 input.
    ((cell as u128 * rncs as u128) / cells as u128) as u64
}

/// K-way merges per-user request streams into one
/// `(time, user, seq)`-ordered stream — the RNC adjudication order.
///
/// Each input is `(user index, times)` with `times` non-decreasing
/// (the phase-1 contract); the output is the exact global sort of all
/// `(time, user, seq)` triples. Below `MERGE_HEAP_CUTOVER` streams
/// the classic O(N log U) cursor heap wins — with a handful of live
/// cursors the heap fits in a cache line or two and its log U factor
/// is tiny. At or above the cutover the triples are concatenated and
/// `sort_unstable`d instead: pdqsort's sequential memory traffic beats
/// the heap's pointer chasing as soon as U grows, and keeps winning at
/// every many-stream shape measured (the fleet bench,
/// `rnc_adjudication`, pins both strategies either side of the
/// cutover).
pub fn merge_requests(streams: &[(u64, Vec<Instant>)]) -> Vec<(Instant, u64, u32)> {
    merge_request_streams(streams)
}

/// Stream count at which [`merge_requests`] switches from the cursor
/// heap to concat-and-sort. Measured at a constant ~0.5M total
/// elements on the fleet bench: the heap wins every shape up to
/// 48×10922 (26.8ms vs 28.3ms) and loses from 64×8192 up (30.0ms vs
/// 24.7ms), with pdqsort's margin widening monotonically after that
/// (512×48: 0.79ms vs 1.20ms; 32768×48: 103ms vs 310ms). The
/// crossover therefore sits between 48 and 64 streams; 64 is the
/// first measured sort win.
const MERGE_HEAP_CUTOVER: usize = 64;

/// The [`merge_requests`] core, generic over how the per-user streams
/// are held: owned vectors (the public entry point) or borrowed slices
/// (the topology runner merging out of a shared request cache without
/// cloning every stream).
fn merge_request_streams<S: AsRef<[Instant]>>(streams: &[(u64, S)]) -> Vec<(Instant, u64, u32)> {
    if streams.len() < MERGE_HEAP_CUTOVER {
        merge_cursor_heap(streams)
    } else {
        merge_concat_sort(streams)
    }
}

/// Concatenate every `(time, user, seq)` triple and `sort_unstable`
/// (pdqsort). O(N log N) comparisons but sequential memory traffic;
/// the winner at or above [`MERGE_HEAP_CUTOVER`] streams. Both strategies
/// sort by the full strict-total-order triple, so ties on `time`
/// resolve identically and the outputs are interchangeable
/// (`merge_strategies_agree_on_any_input` property-tests this).
fn merge_concat_sort<S: AsRef<[Instant]>>(streams: &[(u64, S)]) -> Vec<(Instant, u64, u32)> {
    let total: usize = streams.iter().map(|(_, times)| times.as_ref().len()).sum();
    let mut merged = Vec::with_capacity(total);
    for (user, times) in streams {
        merged.extend(times.as_ref().iter().enumerate().map(|(seq, &at)| (at, *user, seq as u32)));
    }
    merged.sort_unstable();
    merged
}

/// Classic heap-based k-way merge: the heap holds one cursor per
/// stream, popping in ascending (time, user, seq) order. O(N log U)
/// with U live cursors — the winner below [`MERGE_HEAP_CUTOVER`]
/// streams, where the whole heap stays cache-resident and log U is
/// small enough that its per-element cost undercuts a full re-sort.
fn merge_cursor_heap<S: AsRef<[Instant]>>(streams: &[(u64, S)]) -> Vec<(Instant, u64, u32)> {
    let total: usize = streams.iter().map(|(_, times)| times.as_ref().len()).sum();
    let mut heap: BinaryHeap<std::cmp::Reverse<(Instant, u64, u32, usize)>> =
        BinaryHeap::with_capacity(streams.len());
    for (slot, (user, times)) in streams.iter().enumerate() {
        if let Some(&first) = times.as_ref().first() {
            heap.push(std::cmp::Reverse((first, *user, 0, slot)));
        }
    }
    let mut merged = Vec::with_capacity(total);
    while let Some(std::cmp::Reverse((at, user, seq, slot))) = heap.pop() {
        merged.push((at, user, seq));
        let times = streams[slot].1.as_ref();
        let next = seq as usize + 1;
        if next < times.len() {
            heap.push(std::cmp::Reverse((times[next], user, next as u32, slot)));
        }
    }
    merged
}

/// One adjudication-stream event on the mobile path. The derived order
/// — time, then user, then kind — is a strict total order over a run's
/// events (a user has at most one handoff per instant and unique
/// request `seq`s), so a plain sort yields the same deterministic
/// stream on every machine. Handoff sides order before requests at the
/// same instant, matching [`MobilitySpec::cell_at`]'s
/// boundary-inclusive semantics: a request stamped exactly at a
/// handoff is adjudicated in the cell being entered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct AdjEvent {
    at: Instant,
    user: u64,
    kind: AdjEventKind,
    /// The cell this event charges in its RNC's partition.
    cell: u64,
    /// Handoff sides only: whether the handoff crosses an RNC boundary
    /// (and therefore also charges this RNC's own policy and budget).
    crosses: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum AdjEventKind {
    /// Source side of a handoff: the user vacates `cell`.
    HandoffOut,
    /// Target side of a handoff: the user enters `cell`.
    HandoffIn,
    /// Fast-dormancy request number `seq` of the user's stream.
    Request { seq: u32 },
}

/// Adjudicates one fast-dormancy request through both gates, recording
/// the verdict and per-cell counters.
///
/// Two gates: the cell decides whether to forward, the RNC whether to
/// admit. A cell-level denial never reaches the RNC's decision logic,
/// but its request message still transits the RNC, so both levels
/// observe every request's adjudication-time cost. Forwarding commits
/// the cell's own policy state: a rate-limited cell that forwards a
/// request the RNC then refuses has still spent its grant slot (the
/// release it cleared never happened, but the cell cannot know that at
/// forwarding time).
///
/// `hinted` requests — the mobility model predicts a handoff within its
/// hint window — bypass both gates: the network wants the device
/// dormant *before* the handoff (an idle-mode cell reselection is far
/// cheaper than an active handover), and the release still costs its
/// grant messages. Static mobility never hints.
#[allow(clippy::too_many_arguments)] // one call site per adjudication path
fn adjudicate_request(
    at: Instant,
    user: u64,
    seq: u32,
    cell: usize,
    rnc: usize,
    hinted: bool,
    signaling: &SignalingModel,
    cell_policies: &mut [Box<dyn AdmissionPolicy>],
    rnc_policy: &mut dyn AdmissionPolicy,
    cell_loads: &mut [CellLoad],
    denied_by_rnc: &mut [u64],
    verdicts: &mut [Vec<bool>],
    hint_grants: &mut u64,
) {
    let (cell_ok, ok) = if hinted {
        (true, true)
    } else {
        let cell_ok = cell_policies[cell].admit(at);
        (cell_ok, cell_ok && rnc_policy.admit(at))
    };
    let messages = if ok { signaling.per_fd_demotion } else { REQUEST_MESSAGES };
    cell_policies[cell].observe(at, messages);
    rnc_policy.observe(at, messages);
    verdicts[user as usize][seq as usize] = ok;
    if ok {
        cell_loads[cell].granted += 1;
        if hinted {
            *hint_grants += 1;
        }
    } else {
        cell_loads[cell].denied += 1;
        if cell_ok {
            denied_by_rnc[rnc] += 1;
        }
    }
}

/// Uniform access to a fleet population for the two-pass runner:
/// materialize user `i` (carrier, trace, user-days) on demand, in any
/// order, from any worker.
trait TopologyUsers: Sync {
    /// Population size.
    fn users(&self) -> u64;
    /// Users per shard (the deterministic reduction order).
    fn shard_size(&self) -> u64;
    /// Materializes user `index`. Must be deterministic: both passes
    /// call it for every user, and pass 2 must see pass 1's trace.
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError>;
}

struct SyntheticUsers<'a>(&'a Scenario);

impl TopologyUsers for SyntheticUsers<'_> {
    fn users(&self) -> u64 {
        self.0.users
    }
    fn shard_size(&self) -> u64 {
        self.0.shard_size.max(1)
    }
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError> {
        let (carrier, model) = self.0.user(index);
        let days = model.days;
        Ok((carrier, model.generate(), days))
    }
}

struct CorpusUsers<'a> {
    scenario: &'a CorpusScenario,
    corpus: &'a Corpus,
}

impl TopologyUsers for CorpusUsers<'_> {
    fn users(&self) -> u64 {
        self.corpus.len() as u64
    }
    fn shard_size(&self) -> u64 {
        self.scenario.shard_size.max(1)
    }
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError> {
        let trace = load_corpus_trace(self.scenario, self.corpus, index)?;
        let carrier = draw_carrier(&self.scenario.carrier_mix, self.scenario.master_seed, index);
        let days = days_spanned(&trace);
        Ok((carrier, trace, days))
    }
}

/// Runs a synthetic scenario through its network topology. Called by
/// [`crate::runner::run`] when `scenario.cells` is set; infallible in
/// practice (synthesis cannot fail), fallible in type for the shared
/// core.
pub(crate) fn run_topology_synthetic(
    scenario: &Scenario,
    topology: &NetworkTopology,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&RequestCache>,
) -> Result<FleetReport, ScenError> {
    let empty = || FleetReport::empty(scenario.name.clone(), scenario.scheme.label());
    // The fingerprint is only meaningful for synthetic populations —
    // it is computed here, next to the synthesis it identifies.
    let fingerprint = Fingerprint::of(scenario);
    run_topology(
        &SyntheticUsers(scenario),
        scenario.scheme,
        &scenario.sim,
        topology,
        scenario.master_seed,
        &empty,
        threads,
        obs,
        cache.map(|cache| (cache, fingerprint)),
    )
}

/// Runs a corpus replay through its network topology against an
/// already-resolved file list. Called by
/// [`crate::runner::run_pinned_corpus`] when `scenario.cells` is set.
pub(crate) fn run_topology_corpus(
    scenario: &CorpusScenario,
    corpus: &Corpus,
    topology: &NetworkTopology,
    threads: usize,
    obs: Obs<'_>,
) -> Result<FleetReport, ScenError> {
    let source_label = format!("corpus {} ({} traces)", scenario.spec.dir.display(), corpus.len());
    let empty = || {
        let mut report = FleetReport::empty(scenario.name.clone(), scenario.scheme.label());
        report.source = source_label.clone();
        report
    };
    // Corpus replays have no synthesis fingerprint (the population is
    // the directory's contents), so they never touch the cache.
    run_topology(
        &CorpusUsers { scenario, corpus },
        scenario.scheme,
        &scenario.sim,
        topology,
        scenario.master_seed,
        &empty,
        threads,
        obs,
        None,
    )
}

/// Pass-2 shard partial: the energy fold plus each cell's per-second
/// RRC-message counters. Counter addition commutes, but the frontier
/// still folds in shard order, keeping the whole partial deterministic.
struct TopologyPartial {
    report: FleetReport,
    /// Per cell: second index → RRC messages in that second.
    seconds: Vec<BTreeMap<i64, u64>>,
    /// Per-user status-quo summaries `(energy bits, switch cycles)` in
    /// user-index order, collected only when a request cache wants to
    /// learn this population's baselines (empty otherwise).
    baselines: Vec<(u64, u64)>,
    /// Freshly replayed memo entries, keyed `(user index, verdict
    /// hash)`, collected only when a request cache is configured
    /// (empty otherwise) and taught back to it after the run.
    fresh: Vec<((u64, u64), ReplayEntry)>,
}

impl Partial for TopologyPartial {
    fn absorb(&mut self, mut other: TopologyPartial) {
        self.report.merge(&other.report);
        for (mine, theirs) in self.seconds.iter_mut().zip(other.seconds) {
            for (second, messages) in theirs {
                *mine.entry(second).or_insert(0) += messages;
            }
        }
        // Shard-order absorption reassembles user-index order, exactly
        // as pass 1's request-stream collection does.
        self.baselines.append(&mut other.baselines);
        self.fresh.append(&mut other.fresh);
    }
}

/// The two-pass core shared by synthetic and corpus topology runs. See
/// the module docs for the pass structure and memory bounds.
///
/// Observation: trace materialization in either pass records under the
/// `synthesize` span, pass-1 request extraction under `simulate`,
/// per-RNC adjudication under `adjudicate`, and pass-2 scripted replay
/// under `replay`. Live progress counts each user once per executed
/// pass, so the expected total published to the table is `2 × users` —
/// or `1 × users` when a request-cache hit skips pass 1 entirely.
///
/// `cache`: an optional [`RequestCache`] plus the population's
/// [`Fingerprint`]. On a hit, pass 1 is skipped and the cached streams
/// adjudicated directly; on a miss, the extracted streams are stored
/// for the next cell. Pass 2 similarly serves per-user status-quo
/// baselines from the cache (they are scheme-independent) and teaches
/// it the baselines it had to compute. Cached and uncached runs are
/// bit-identical — the harness in `tests/cache_fleet.rs` pins this.
#[allow(clippy::too_many_arguments)] // one shared private core, two thin entry shims
fn run_topology<U: TopologyUsers>(
    access: &U,
    scheme: Scheme,
    sim: &SimConfig,
    topology: &NetworkTopology,
    master_seed: u64,
    empty: &(dyn Fn() -> FleetReport + Sync),
    threads: usize,
    obs: Obs<'_>,
    cache: Option<(&RequestCache, Fingerprint)>,
) -> Result<FleetReport, ScenError> {
    assert!(
        scheme.scriptable(),
        "scheme {:?} cannot run on a network topology: MakeActive batching depends on grant \
         outcomes, so the two-pass replay is not exact (scenario files reject this at parse \
         time)",
        scheme
    );
    topology.validate_counts();

    let users = access.users();
    let shard_size = access.shard_size();
    let shard_count = users.div_ceil(shard_size);
    let shard_range = |shard: u64| {
        let lo = (shard * shard_size).min(users);
        let hi = ((shard + 1) * shard_size).min(users);
        lo..hi
    };

    // ---- Pass 1: cheap request extraction (one trace per worker). ----
    // Or, on a cache hit, no pass at all: the streams were extracted by
    // an earlier cell of the same population and scheme.
    let scheme_token = scheme.to_string();
    let cached_streams =
        cache.and_then(|(cache, fingerprint)| cache.lookup(&fingerprint, &scheme_token, obs));
    if let Some(table) = obs.progress {
        // Each executed pass touches every user; a cache hit runs only
        // pass 2. Published before the work so the denominator is
        // truthful from the first progress frame.
        table.add_users_total(if cached_streams.is_some() { users } else { users * 2 });
    }
    let streams: Arc<Vec<Vec<Instant>>> = match cached_streams {
        Some(streams) => streams,
        None => {
            let extracted: Vec<(u64, Vec<Instant>)> =
                run_sharded(shard_count, threads, obs, &Vec::new, &|shard, ctx| {
                    let mut partial = Vec::new();
                    for index in shard_range(shard) {
                        let (carrier, trace, days) = {
                            let _synthesize = span(obs.recorder, "synthesize");
                            match access.user(index) {
                                Ok(user) => user,
                                Err(e) => {
                                    ctx.trace_failed();
                                    return Err(e);
                                }
                            }
                        };
                        let requests = {
                            let _simulate = span(obs.recorder, "simulate");
                            scheme
                                .request_trace(&carrier, sim, &trace)
                                .expect("scriptable scheme always yields a request trace")
                        };
                        partial.push((index, requests.into_times()));
                        ctx.user_done(days as u64);
                        // `trace` drops here: pass 1 keeps only the requests.
                    }
                    Ok(partial)
                })?;
            debug_assert!(
                extracted.iter().enumerate().all(|(at, (index, _))| at as u64 == *index),
                "shard-order merge must reassemble users in index order"
            );
            let streams =
                Arc::new(extracted.into_iter().map(|(_, times)| times).collect::<Vec<_>>());
            if let Some((cache, fingerprint)) = cache {
                cache.store(&fingerprint, &scheme_token, Arc::clone(&streams), obs);
            }
            streams
        }
    };
    debug_assert_eq!(
        streams.len() as u64,
        users,
        "request streams must cover the population exactly (the cache validates this \
         against its fingerprint before serving an entry)"
    );

    // ---- Adjudication: each RNC consumes its members' events in ------
    // (time, user) order. Static mobility takes the k-way-merge fast
    // path (every request lands in the user's fixed cell); mobile
    // fleets resolve each request to the cell occupied at that instant
    // and interleave the enumerated handoff charges into the stream.
    let cell_count = topology.cells as usize;
    let rnc_count = topology.rncs as usize;
    let mobile = !topology.mobility.is_static();
    let mut cell_users = vec![0u64; cell_count];
    // Every user's anchor cell, indexed by user — computed once here so
    // the static per-request loop below is a lookup, not a hash.
    let mut user_cells: Vec<u64> = Vec::with_capacity(streams.len());
    // Static path: member users' streams grouped per RNC (streams stay
    // time-sorted, the k-way merge precondition). Borrowed out of the
    // shared stream store so a cache-served population is never cloned.
    let mut per_rnc: Vec<Vec<(u64, &[Instant])>> = vec![Vec::new(); rnc_count];
    // Mobile path: per-RNC event lists, sorted below.
    let mut per_rnc_events: Vec<Vec<AdjEvent>> = vec![Vec::new(); rnc_count];
    let mut verdicts: Vec<Vec<bool>> = Vec::with_capacity(streams.len());
    for (index, times) in streams.iter().enumerate() {
        let index = index as u64;
        let home = topology.home_cell(master_seed, index);
        cell_users[home as usize] += 1;
        user_cells.push(home);
        verdicts.push(vec![false; times.len()]);
        if mobile {
            for (seq, &at) in times.iter().enumerate() {
                let cell = topology.user_cell(master_seed, index, at);
                let rnc = rnc_of_cell(cell, topology.cells, topology.rncs) as usize;
                per_rnc_events[rnc].push(AdjEvent {
                    at,
                    user: index,
                    kind: AdjEventKind::Request { seq: seq as u32 },
                    cell,
                    crosses: false,
                });
            }
            // Handoffs are charged over the user's active span: through
            // the end of the calendar day of their last request (see
            // the mobility module docs for why the horizon derives from
            // the request stream). A handoff charges its source side in
            // the source cell's RNC partition and its target side in
            // the target's — each partition stays self-contained, so
            // per-RNC adjudication order never depends on another RNC.
            if let Some(&last) = times.last() {
                let horizon_days =
                    (last.as_micros().div_euclid(1_000_000).max(0) as u64) / 86_400 + 1;
                for h in
                    topology.mobility.handoffs(master_seed, index, topology.cells, horizon_days)
                {
                    let from_rnc = rnc_of_cell(h.from, topology.cells, topology.rncs) as usize;
                    let to_rnc = rnc_of_cell(h.to, topology.cells, topology.rncs) as usize;
                    let crosses = from_rnc != to_rnc;
                    per_rnc_events[from_rnc].push(AdjEvent {
                        at: h.at,
                        user: index,
                        kind: AdjEventKind::HandoffOut,
                        cell: h.from,
                        crosses,
                    });
                    per_rnc_events[to_rnc].push(AdjEvent {
                        at: h.at,
                        user: index,
                        kind: AdjEventKind::HandoffIn,
                        cell: h.to,
                        crosses,
                    });
                }
            }
        } else {
            let rnc = rnc_of_cell(home, topology.cells, topology.rncs) as usize;
            per_rnc[rnc].push((index, times.as_slice()));
        }
    }

    let mut cell_loads: Vec<CellLoad> =
        cell_users.iter().map(|&users| CellLoad { users, ..CellLoad::default() }).collect();
    let mut denied_by_rnc = vec![0u64; rnc_count];
    let mut inter_rnc_handoffs = vec![0u64; rnc_count];
    // Handoff messages per cell/RNC per second, charged at adjudication
    // time and merged into the replay-time load maps below so handoff
    // storms count against the same budgets as everything else.
    let mut cell_handoff_seconds: Vec<BTreeMap<i64, u64>> = vec![BTreeMap::new(); cell_count];
    let mut rnc_handoff_seconds: Vec<BTreeMap<i64, u64>> = vec![BTreeMap::new(); rnc_count];
    let mut hint_grants = 0u64;
    let mut cell_policies: Vec<_> =
        (0..cell_count).map(|_| topology.cell_admission.build()).collect();
    if mobile {
        for (rnc, events) in per_rnc_events.iter_mut().enumerate() {
            // One adjudication span per RNC, on the caller thread.
            let _adjudicate = span(obs.recorder, "adjudicate");
            events.sort_unstable();
            let mut rnc_policy = topology.rnc_admission.build();
            for e in events.iter() {
                match e.kind {
                    AdjEventKind::HandoffOut | AdjEventKind::HandoffIn => {
                        let messages = topology.signaling.per_handoff;
                        let cell = e.cell as usize;
                        // Each side charges its own cell — the cell's
                        // policy observes the load even though handoffs
                        // are never admission decisions.
                        cell_policies[cell].observe(e.at, messages);
                        let second = e.at.as_micros().div_euclid(1_000_000);
                        *cell_handoff_seconds[cell].entry(second).or_insert(0) += messages as u64;
                        if e.kind == AdjEventKind::HandoffOut {
                            cell_loads[cell].handoffs_out += 1;
                            if e.crosses {
                                // Attributed to the source RNC, like
                                // denied_by_rnc is attributed where the
                                // decision happened.
                                inter_rnc_handoffs[rnc] += 1;
                            }
                        } else {
                            cell_loads[cell].handoffs_in += 1;
                        }
                        if e.crosses {
                            // Boundary-crossing handoffs cost the RNC
                            // its own exchange on top of the member
                            // cells' — the reactive governor sees it.
                            rnc_policy.observe(e.at, messages);
                            *rnc_handoff_seconds[rnc].entry(second).or_insert(0) += messages as u64;
                        }
                    }
                    AdjEventKind::Request { seq } => {
                        let hinted = topology.mobility.handoff_within(
                            master_seed,
                            e.user,
                            topology.cells,
                            e.at,
                        );
                        adjudicate_request(
                            e.at,
                            e.user,
                            seq,
                            e.cell as usize,
                            rnc,
                            hinted,
                            &topology.signaling,
                            &mut cell_policies,
                            rnc_policy.as_mut(),
                            &mut cell_loads,
                            &mut denied_by_rnc,
                            &mut verdicts,
                            &mut hint_grants,
                        );
                    }
                }
            }
        }
    } else {
        for (rnc, members) in per_rnc.iter().enumerate() {
            // One adjudication span per RNC, on the caller thread.
            let _adjudicate = span(obs.recorder, "adjudicate");
            let mut rnc_policy = topology.rnc_admission.build();
            for (at, user, seq) in merge_request_streams(members) {
                let cell = user_cells[user as usize] as usize;
                adjudicate_request(
                    at,
                    user,
                    seq,
                    cell,
                    rnc,
                    false,
                    &topology.signaling,
                    &mut cell_policies,
                    rnc_policy.as_mut(),
                    &mut cell_loads,
                    &mut denied_by_rnc,
                    &mut verdicts,
                    &mut hint_grants,
                );
            }
        }
    }
    drop(cell_policies);
    drop(per_rnc);
    drop(per_rnc_events);
    let verdicts = &verdicts;
    if obs.recorder.enabled() {
        let granted: u64 = cell_loads.iter().map(|c| c.granted).sum();
        let denied: u64 = cell_loads.iter().map(|c| c.denied).sum();
        obs.recorder.counter("requests_granted").add(granted);
        obs.recorder.counter("requests_denied").add(denied);
        obs.recorder.counter("requests_denied_by_rnc").add(denied_by_rnc.iter().sum());
        // Handoffs are conserved: every one has exactly one in-side.
        let handoffs: u64 = cell_loads.iter().map(|c| c.handoffs_in).sum();
        if handoffs > 0 {
            obs.recorder.counter("handoffs").add(handoffs);
            obs.recorder.counter("inter_rnc_handoffs").add(inter_rnc_handoffs.iter().sum());
        }
        if hint_grants > 0 {
            obs.recorder.counter("hint_grants").add(hint_grants);
        }
    }

    // ---- Pass 2: exact replay, energy fold + per-second load. --------
    // The default transition_log_limit is a safety cap for interactive
    // use; here a truncated log would silently undercount cell load, so
    // lift it — the log is per user and dropped before the next one.
    let replay_sim =
        SimConfig { record_transitions: true, transition_log_limit: usize::MAX, ..sim.clone() };
    // The status-quo baseline is scheme-independent, so a cache that
    // already knows this population serves it; a first encounter
    // collects the summaries in shard order and teaches the cache.
    let cached_baselines =
        cache.and_then(|(cache, fingerprint)| cache.lookup_baselines(&fingerprint));
    debug_assert!(
        cached_baselines.as_ref().is_none_or(|b| b.len() as u64 == users),
        "cached baselines must cover the population exactly"
    );
    let learn_baselines = cache.is_some() && cached_baselines.is_none();
    let cached_baselines = &cached_baselines;
    // The replay memo: per-user outcomes from earlier cells of the same
    // population, keyed by each user's verdict-stream hash. A hit folds
    // the stored outcome — no trace materialization, no engine run —
    // so a sweep cell pays only for the users whose verdicts changed.
    let memo = cache.map(|(cache, fingerprint)| {
        let topo = topo_hash(topology);
        (topo, fingerprint.days, cache.lookup_outcomes(&fingerprint, &scheme_token, topo, obs))
    });
    let verdict_hashes: Vec<u64> = match &memo {
        Some(_) => verdicts.iter().map(|v| verdict_hash(v)).collect(),
        None => Vec::new(),
    };
    let memo = &memo;
    let verdict_hashes = &verdict_hashes;
    let empty_partial = || TopologyPartial {
        report: empty(),
        seconds: vec![BTreeMap::new(); cell_count],
        baselines: Vec::new(),
        fresh: Vec::new(),
    };
    let folded: TopologyPartial =
        run_sharded(shard_count, threads, obs, &empty_partial, &|shard, ctx| {
            let users_simulated = obs.recorder.counter("users_simulated");
            let days_counter = obs.recorder.counter("user_days");
            let replay_counters = memo.as_ref().map(|_| {
                (obs.recorder.counter("replay_hits"), obs.recorder.counter("replay_misses"))
            });
            let mut partial = empty_partial();
            for index in shard_range(shard) {
                // Memo hit: fold the cached outcome and load deltas
                // without materializing the trace or running the engine.
                if let Some((_, fp_days, known)) = memo {
                    if let Some(entry) = known.get(&(index, verdict_hashes[index as usize])) {
                        let (hits, _) = replay_counters.as_ref().expect("memo implies counters");
                        hits.incr();
                        let _replay = span(obs.recorder, "replay");
                        if learn_baselines {
                            partial
                                .baselines
                                .push((entry.baseline_energy_bits, entry.baseline_switches));
                        }
                        for &(cell, second, messages) in &entry.seconds {
                            *partial.seconds[cell as usize].entry(second).or_insert(0) += messages;
                        }
                        // Synthetic populations carry a uniform
                        // days-per-user, pinned by the fingerprint.
                        let days = *fp_days;
                        partial.report.fold_user_outcome(
                            days,
                            &entry.outcome,
                            f64::from_bits(entry.baseline_energy_bits),
                            entry.baseline_switches,
                        );
                        drop(_replay);
                        users_simulated.incr();
                        days_counter.add(days as u64);
                        ctx.user_done(days as u64);
                        continue;
                    }
                    let (_, misses) = replay_counters.as_ref().expect("memo implies counters");
                    misses.incr();
                }
                let (carrier, trace, days) = {
                    let _synthesize = span(obs.recorder, "synthesize");
                    match access.user(index) {
                        Ok(user) => user,
                        Err(e) => {
                            ctx.trace_failed();
                            return Err(e);
                        }
                    }
                };
                let _replay = span(obs.recorder, "replay");
                let (baseline_energy_j, baseline_switches) = match cached_baselines {
                    Some(bases) => {
                        let (energy_bits, switches) = bases[index as usize];
                        (f64::from_bits(energy_bits), switches)
                    }
                    None => {
                        let baseline = Scheme::StatusQuo.run(&carrier, sim, &trace);
                        (baseline.total_energy(), baseline.switch_cycles())
                    }
                };
                if learn_baselines {
                    partial.baselines.push((baseline_energy_j.to_bits(), baseline_switches));
                }
                let mut scheme_run = scheme
                    .run_scripted(&carrier, &replay_sim, &trace, &verdicts[index as usize])
                    .expect("scriptable scheme always replays");
                let home_cell = topology.home_cell(master_seed, index) as usize;
                let mobile = !topology.mobility.is_static();
                // The user's own (cell, second) → msgs deltas, grouped
                // before folding so the memoized form and the live fold
                // apply the exact same integer additions.
                let mut user_seconds: BTreeMap<(u64, i64), u64> = BTreeMap::new();
                if let Some(transitions) = scheme_run.transitions.take() {
                    for t in &transitions {
                        // Pass 2 attributes each transition to the cell
                        // the user occupies when it happens — the same
                        // assignment seam pass-1 adjudication resolves
                        // requests through ([`NetworkTopology::user_cell`]).
                        let cell = if mobile {
                            topology.user_cell(master_seed, index, t.at) as usize
                        } else {
                            home_cell
                        };
                        let second = t.at.as_micros().div_euclid(1_000_000);
                        let messages = topology.signaling.messages_for(t) as u64;
                        if memo.is_some() {
                            *user_seconds.entry((cell as u64, second)).or_insert(0) += messages;
                        } else {
                            *partial.seconds[cell].entry(second).or_insert(0) += messages;
                        }
                    }
                }
                if memo.is_some() {
                    for (&(cell, second), &messages) in &user_seconds {
                        *partial.seconds[cell as usize].entry(second).or_insert(0) += messages;
                    }
                    partial.fresh.push((
                        (index, verdict_hashes[index as usize]),
                        ReplayEntry {
                            outcome: tailwise_sim::ReplayOutcome::of(&scheme_run),
                            baseline_energy_bits: baseline_energy_j.to_bits(),
                            baseline_switches,
                            seconds: user_seconds
                                .into_iter()
                                .map(|((cell, second), messages)| (cell, second, messages))
                                .collect(),
                        },
                    ));
                }
                partial.report.fold_user_baseline(
                    days,
                    &scheme_run,
                    baseline_energy_j,
                    baseline_switches,
                );
                drop(_replay);
                users_simulated.incr();
                days_counter.add(days as u64);
                ctx.user_done(days as u64);
                // `trace` drops here: pass 2 is load→replay→discard again.
            }
            Ok(partial)
        })?;

    // ---- Per-cell and per-RNC load accounting. -----------------------
    let TopologyPartial { mut report, seconds, baselines, fresh } = folded;
    if learn_baselines {
        if let Some((cache, fingerprint)) = cache {
            debug_assert_eq!(baselines.len() as u64, users);
            cache.store_baselines(&fingerprint, Arc::new(baselines));
        }
    }
    if let (Some((cache, fingerprint)), Some(&(topo, _, _))) = (cache, memo.as_ref()) {
        // Teach the memo what this cell had to replay (a no-op when
        // everything hit, so warm runs leave spill files untouched).
        cache.store_outcomes(&fingerprint, &scheme_token, topo, fresh, obs);
    }
    let mut rnc_seconds: Vec<BTreeMap<i64, u64>> = vec![BTreeMap::new(); rnc_count];
    for (cell, mut seconds) in seconds.into_iter().enumerate() {
        // Handoff messages charged at adjudication time join the
        // replay-time load before totals, peaks, and overload are
        // computed — handoff storms overload the same budgets.
        for (second, messages) in std::mem::take(&mut cell_handoff_seconds[cell]) {
            *seconds.entry(second).or_insert(0) += messages;
        }
        let rnc = rnc_of_cell(cell as u64, topology.cells, topology.rncs) as usize;
        let load = &mut cell_loads[cell];
        for (second, messages) in seconds {
            load.total_messages += messages;
            load.peak_messages_per_s = load.peak_messages_per_s.max(messages);
            if topology.cell_budget.overloaded(messages) {
                load.overload_seconds += 1;
            }
            *rnc_seconds[rnc].entry(second).or_insert(0) += messages;
        }
    }
    let mut rnc_loads: Vec<RncLoad> = (0..rnc_count)
        .map(|rnc| RncLoad {
            denied_by_rnc: denied_by_rnc[rnc],
            inter_rnc_handoffs: inter_rnc_handoffs[rnc],
            ..RncLoad::default()
        })
        .collect();
    for (cell, load) in cell_loads.iter().enumerate() {
        let rnc = &mut rnc_loads[rnc_of_cell(cell as u64, topology.cells, topology.rncs) as usize];
        rnc.cells += 1;
        rnc.users += load.users;
        rnc.granted += load.granted;
        rnc.denied += load.denied;
    }
    for (rnc, mut seconds) in rnc_seconds.into_iter().enumerate() {
        // The RNC's own handoff exchanges (boundary crossings) count
        // against its budget on top of the member cells' load.
        for (second, messages) in std::mem::take(&mut rnc_handoff_seconds[rnc]) {
            *seconds.entry(second).or_insert(0) += messages;
        }
        let load = &mut rnc_loads[rnc];
        for (_, messages) in seconds {
            load.total_messages += messages;
            load.peak_messages_per_s = load.peak_messages_per_s.max(messages);
            if topology.rnc_budget.overloaded(messages) {
                load.overload_seconds += 1;
            }
        }
    }
    report.signaling = Some(FleetSignaling {
        cell_capacity_per_s: topology.cell_budget.capacity_per_s,
        rnc_capacity_per_s: topology.rnc_budget.capacity_per_s,
        cells: cell_loads,
        rncs: rnc_loads,
    });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::time::Duration;

    #[test]
    fn cell_assignment_is_deterministic_and_roughly_uniform() {
        let cells = 8u64;
        let counts = (0..8000).fold(vec![0u64; cells as usize], |mut acc, i| {
            acc[cell_of(7, i, cells) as usize] += 1;
            acc
        });
        for (cell, &n) in counts.iter().enumerate() {
            assert!((800..1200).contains(&n), "cell {cell} holds {n} of 8000 users");
        }
        assert_eq!(cell_of(7, 42, cells), cell_of(7, 42, cells));
        // The assignment is seed-sensitive: a different master seed
        // shuffles users across cells.
        let moved = (0..1000).filter(|&i| cell_of(7, i, cells) != cell_of(8, i, cells)).count();
        assert!(moved > 500, "only {moved} of 1000 users moved on reseed");
    }

    #[test]
    fn single_cell_topologies_pin_everyone_to_cell_zero() {
        for i in 0..100 {
            assert_eq!(cell_of(1, i, 1), 0);
        }
    }

    #[test]
    fn rnc_blocks_are_contiguous_and_near_equal() {
        // 12 cells over 3 RNCs: blocks of 4.
        let owners: Vec<u64> = (0..12).map(|c| rnc_of_cell(c, 12, 3)).collect();
        assert_eq!(owners, [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2, 2]);
        // Ragged split: 7 cells over 3 RNCs — block sizes within ±1.
        let owners: Vec<u64> = (0..7).map(|c| rnc_of_cell(c, 7, 3)).collect();
        assert!(owners.windows(2).all(|w| w[0] <= w[1]), "blocks must be contiguous: {owners:?}");
        let mut sizes = vec![0u64; 3];
        for rnc in owners {
            sizes[rnc as usize] += 1;
        }
        assert_eq!(sizes.iter().sum::<u64>(), 7);
        assert!(sizes.iter().all(|&s| (2..=3).contains(&s)), "{sizes:?}");
        // Degenerate hierarchies: one RNC owns everything; one cell per
        // RNC is the identity.
        assert!((0..50).all(|c| rnc_of_cell(c, 50, 1) == 0));
        assert!((0..50).all(|c| rnc_of_cell(c, 50, 50) == c));
    }

    #[test]
    #[should_panic(expected = "cannot spread")]
    fn more_rncs_than_cells_is_rejected() {
        NetworkTopology::with_rncs(5, 4);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cell_topologies_are_rejected() {
        NetworkTopology::new(0);
    }

    #[test]
    fn kway_merge_equals_concat_sort() {
        // Deterministic pseudo-random streams per user, non-decreasing
        // within each user (the phase-1 contract).
        let streams: Vec<(u64, Vec<Instant>)> = (0..17u64)
            .map(|user| {
                let mut at = 0i64;
                let times = (0..(user % 7))
                    .map(|k| {
                        at += (splitmix(user * 1000 + k) % 5_000_000) as i64;
                        Instant::from_micros(at)
                    })
                    .collect();
                (user, times)
            })
            .collect();
        let merged = merge_requests(&streams);
        let mut expect: Vec<(Instant, u64, u32)> = streams
            .iter()
            .flat_map(|(user, times)| {
                times.iter().enumerate().map(|(seq, &at)| (at, *user, seq as u32))
            })
            .collect();
        expect.sort_unstable();
        assert_eq!(merged, expect);
        assert!(merge_requests(&[]).is_empty());
    }

    #[test]
    fn merge_strategies_agree_across_the_cutover() {
        // A population either side of MERGE_HEAP_CUTOVER: both
        // strategies must produce the identical stream, so the
        // dispatch in `merge_request_streams` can never change an
        // adjudication order — only the bill.
        for users in [MERGE_HEAP_CUTOVER / 2, MERGE_HEAP_CUTOVER + 6] {
            let streams: Vec<(u64, Vec<Instant>)> = (0..users as u64)
                .map(|user| {
                    let mut at = (splitmix(user) % 1_000) as i64;
                    let times = (0..(user % 5))
                        .map(|k| {
                            at += (splitmix(user ^ (k << 32)) % 400_000) as i64;
                            Instant::from_micros(at)
                        })
                        .collect();
                    (user, times)
                })
                .collect();
            assert_eq!(merge_concat_sort(&streams), merge_cursor_heap(&streams), "users={users}");
            assert_eq!(merge_requests(&streams), merge_concat_sort(&streams), "users={users}");
        }
    }

    mod merge_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Equivalence of the two merge strategies over arbitrary
            /// stream shapes — duplicate timestamps across users, empty
            /// streams, and ties within a user included. The triple's
            /// strict total order makes `sort_unstable` deterministic,
            /// so equality here is exact, not modulo tie order.
            #[test]
            fn merge_strategies_agree_on_any_input(
                shapes in proptest::prop::collection::vec(
                    (0u64..64, proptest::prop::collection::vec(0i64..500_000, 0..24)),
                    0..40,
                ),
            ) {
                let streams: Vec<(u64, Vec<Instant>)> = shapes
                    .into_iter()
                    .enumerate()
                    .map(|(i, (jitter, mut gaps))| {
                        gaps.sort_unstable();
                        let mut at = jitter as i64;
                        let times = gaps
                            .into_iter()
                            .map(|g| {
                                at += g;
                                Instant::from_micros(at)
                            })
                            .collect();
                        (i as u64, times)
                    })
                    .collect();
                prop_assert_eq!(merge_concat_sort(&streams), merge_cursor_heap(&streams));
            }
        }
    }

    #[test]
    fn both_passes_share_the_assignment_seam() {
        // Regression for the hoisted per-user cell assignment: pass 1
        // (adjudication grouping) and pass 2 (load attribution) both go
        // through `NetworkTopology::user_cell` / `home_cell`, so the
        // helper must agree with the primitives each pass used to call
        // directly — `cell_of` when static, `MobilitySpec::cell_at`
        // when mobile — at every instant either pass can ask about.
        let mut t = NetworkTopology::with_rncs(3, 12);
        let seed = 0xCE11;
        let instants =
            [Instant::ZERO, Instant::from_secs(7 * 3600), Instant::from_secs(86_400 + 61_000)];
        for index in 0..200u64 {
            assert_eq!(t.home_cell(seed, index), cell_of(seed, index, t.cells));
            for at in instants {
                assert_eq!(t.user_cell(seed, index, at), cell_of(seed, index, t.cells));
            }
        }
        t.mobility = MobilitySpec::commute();
        for index in 0..200u64 {
            // The anchor stays put under mobility (population shares
            // remain comparable)…
            assert_eq!(t.home_cell(seed, index), cell_of(seed, index, t.cells));
            // …while instantaneous membership follows the model.
            for at in instants {
                assert_eq!(
                    t.user_cell(seed, index, at),
                    t.mobility.cell_at(seed, index, t.cells, at)
                );
            }
        }
    }

    #[test]
    fn default_topologies_are_flat_and_permissive() {
        let t = NetworkTopology::new(4);
        assert_eq!(t.rncs, 1);
        assert_eq!(t.cell_admission, AdmissionSpec::Always);
        assert_eq!(t.rnc_admission, AdmissionSpec::Always);
        assert_eq!(t.cell_budget, SignalingBudget::UNBOUNDED);
        let h = NetworkTopology::with_rncs(3, 12);
        assert_eq!((h.rncs, h.cells), (3, 12));
        // Spec-built policies stay usable through the topology surface.
        let mut limited =
            AdmissionSpec::RateLimited { min_interval: Duration::from_secs(5) }.build();
        assert!(limited.admit(Instant::ZERO));
        assert!(!limited.admit(Instant::from_secs(1)));
    }
}
