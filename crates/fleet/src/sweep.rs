//! Scenario sets: one on-disk file expanding into a matrix of fleet
//! runs with a side-by-side comparison table.
//!
//! The paper's evaluation (§6) is exactly this shape — the same
//! population pushed through every scheme (Fig. 9–11), or the same
//! scheme across every carrier (Fig. 17–18). A [`ScenarioSet`] captures
//! it declaratively: a base [`Scenario`] plus `[[sweep]]` axes over
//! schemes, carriers, or population sizes. [`ScenarioSet::expand`]
//! takes the Cartesian product (axes in declared order, later axes
//! varying fastest) and [`run_sweep`] executes every expansion through
//! the sharded runner.
//!
//! Determinism: expansion only rewrites the swept fields, so each
//! expanded scenario is a complete, self-contained [`Scenario`] — its
//! cell in the comparison table is **bit-identical** to running that
//! scenario individually (e.g. after `tailwise fleet export`) at any
//! thread count. Tests pin this.

use tailwise_core::schemes::Scheme;
use tailwise_radio::profile::CarrierProfile;
use tailwise_scenfile::{Pos, ScenError};

use crate::admission::AdmissionSpec;
use crate::cache::RequestCache;
use crate::mobility::MobilitySpec;
use crate::report::FleetReport;
use tailwise_obs::Obs;

use crate::runner::{run_cached, run_source_cached};
use crate::scenario::Scenario;
use crate::source::{SourceSet, UserSource};

/// One `[[sweep]]` axis: the values substituted into the base scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Sweep the scheme under test.
    Schemes(Vec<Scheme>),
    /// Sweep the carrier (each value replaces the whole carrier mix
    /// with that single preset at weight 1).
    Carriers(Vec<CarrierProfile>),
    /// Sweep the population size.
    Users(Vec<u64>),
    /// Sweep the **RNC-level** admission policy of the scenario's
    /// network topology (values are the compact
    /// [`AdmissionSpec`] tokens — `always`, `rate-limited:<secs>`,
    /// `reactive:<watermark>[:<window>]`). Requires a `[cells]`
    /// topology; the classic storm comparison holds the population
    /// fixed while the controller's policy varies.
    Admission(Vec<AdmissionSpec>),
    /// Sweep the mobility model of the scenario's network topology
    /// (values are the compact [`MobilitySpec`] tokens — `static`,
    /// `commute[:<home_hour>:<work_hour>[:<jitter_pct>[:<hint_s>]]]`).
    /// Requires a `[cells]` topology, like `admission`; the handoff
    /// comparison holds the population fixed while movement varies —
    /// and, because mobility is excluded from the request-cache
    /// [`Fingerprint`](crate::cache::Fingerprint), every cell shares
    /// one extraction pass.
    Mobility(Vec<MobilitySpec>),
}

impl SweepAxis {
    /// The axis name used in scenario files and expansion labels.
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::Schemes(_) => "scheme",
            SweepAxis::Carriers(_) => "carrier",
            SweepAxis::Users(_) => "users",
            SweepAxis::Admission(_) => "admission",
            SweepAxis::Mobility(_) => "mobility",
        }
    }

    /// Number of values on this axis (always ≥ 1 after parsing).
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::Schemes(v) => v.len(),
            SweepAxis::Carriers(v) => v.len(),
            SweepAxis::Users(v) => v.len(),
            SweepAxis::Admission(v) => v.len(),
            SweepAxis::Mobility(v) => v.len(),
        }
    }

    /// True when the axis has no values (never the case for parsed
    /// files; the schema rejects empty `values`).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Applies value `index` of this axis to `scenario`, returning the
    /// `axis=value` label fragment.
    ///
    /// # Panics
    /// If an `admission` axis meets a scenario without a network
    /// topology (scenario files reject that combination at parse time).
    fn apply(&self, index: usize, scenario: &mut Scenario) -> String {
        match self {
            SweepAxis::Schemes(v) => {
                scenario.scheme = v[index];
                format!("scheme={}", v[index])
            }
            SweepAxis::Carriers(v) => {
                scenario.carrier_mix = vec![(v[index].clone(), 1.0)];
                format!("carrier={}", v[index])
            }
            SweepAxis::Users(v) => {
                scenario.users = v[index];
                format!("users={}", v[index])
            }
            SweepAxis::Admission(v) => {
                scenario
                    .cells
                    .as_mut()
                    .expect("admission sweep needs a [cells] topology (checked at parse time)")
                    .rnc_admission = v[index].clone();
                format!("admission={}", v[index])
            }
            SweepAxis::Mobility(v) => {
                scenario
                    .cells
                    .as_mut()
                    .expect("mobility sweep needs a [cells] topology (checked at parse time)")
                    .mobility = v[index];
                format!("mobility={}", v[index])
            }
        }
    }

    /// Applies value `index` of this axis to either kind of
    /// [`UserSource`]. Scheme and carrier axes apply to both; the
    /// `users` axis needs a synthetic population (a corpus is sized by
    /// its directory) and errors on a corpus source.
    pub(crate) fn apply_source(
        &self,
        index: usize,
        source: &mut UserSource,
    ) -> Result<String, ScenError> {
        match source {
            UserSource::Synthetic(scenario) => Ok(self.apply(index, scenario)),
            UserSource::Corpus(corpus) => match self {
                SweepAxis::Schemes(v) => {
                    corpus.scheme = v[index];
                    Ok(format!("scheme={}", v[index]))
                }
                SweepAxis::Carriers(v) => {
                    corpus.carrier_mix = vec![(v[index].clone(), 1.0)];
                    Ok(format!("carrier={}", v[index]))
                }
                SweepAxis::Users(_) => Err(ScenError::at(
                    Pos::START,
                    "sweep axis `users` requires a synthetic scenario; \
                     a [corpus] population is sized by its directory",
                )),
                SweepAxis::Admission(v) => match &mut corpus.cells {
                    Some(topology) => {
                        topology.rnc_admission = v[index].clone();
                        Ok(format!("admission={}", v[index]))
                    }
                    None => Err(ScenError::at(
                        Pos::START,
                        "sweep axis `admission` requires a [cells] topology to apply to",
                    )),
                },
                SweepAxis::Mobility(v) => match &mut corpus.cells {
                    Some(topology) => {
                        topology.mobility = v[index];
                        Ok(format!("mobility={}", v[index]))
                    }
                    None => Err(ScenError::at(
                        Pos::START,
                        "sweep axis `mobility` requires a [cells] topology to apply to",
                    )),
                },
            },
        }
    }
}

/// A parsed scenario file: the base scenario plus any sweep axes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSet {
    /// The scenario described by the file's non-sweep tables.
    pub base: Scenario,
    /// The `[[sweep]]` axes, in declaration order.
    pub axes: Vec<SweepAxis>,
}

impl ScenarioSet {
    /// Parses a scenario file from disk.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<ScenarioSet, ScenError> {
        let path = path.as_ref();
        let src = std::fs::read_to_string(path).map_err(|e| {
            ScenError::at(tailwise_scenfile::Pos::START, format!("cannot read scenario file: {e}"))
                .with_origin(path.display().to_string())
        })?;
        Self::from_toml_str(&src).map_err(|e| e.with_origin(path.display().to_string()))
    }

    /// Parses a scenario document from a string.
    pub fn from_toml_str(src: &str) -> Result<ScenarioSet, ScenError> {
        crate::file::set_from_str(src)
    }

    /// Serializes the set back to document text (see
    /// [`Scenario::to_toml_string`] for the representability rules).
    pub fn to_toml_string(&self) -> Result<String, ScenError> {
        crate::file::set_to_toml(&self.base, &self.axes)
    }

    /// True when the file declared at least one `[[sweep]]` axis.
    pub fn is_sweep(&self) -> bool {
        !self.axes.is_empty()
    }

    /// Number of scenarios the set expands into.
    pub fn expansion_count(&self) -> usize {
        self.axes.iter().map(SweepAxis::len).product()
    }

    /// Expands the Cartesian product of the sweep axes over the base
    /// scenario — axes in declared order, later axes varying fastest.
    /// A set with no axes expands to the base scenario alone.
    ///
    /// Each expansion is labeled `base-name [axis=value …]`, and every
    /// non-swept field (master seed, shard size, app mix, …) is copied
    /// verbatim, so an expanded scenario run individually reproduces
    /// its sweep cell bit-for-bit.
    pub fn expand(&self) -> Vec<Scenario> {
        self.expand_labeled().into_iter().map(|(_, scenario)| scenario).collect()
    }

    /// [`expand`](Self::expand) plus each expansion's `axis=value …`
    /// label fragment (empty for a no-sweep set's single expansion).
    fn expand_labeled(&self) -> Vec<(String, Scenario)> {
        let total = self.expansion_count();
        let mut out = Vec::with_capacity(total);
        for mut flat in 0..total {
            let mut scenario = self.base.clone();
            // Decompose `flat` in mixed radix, most significant digit
            // first, so the first declared axis varies slowest.
            let mut labels = Vec::with_capacity(self.axes.len());
            let mut stride = total;
            for axis in &self.axes {
                stride /= axis.len();
                let index = flat / stride;
                flat %= stride;
                labels.push(axis.apply(index, &mut scenario));
            }
            let label = labels.join(" ");
            if !label.is_empty() {
                scenario.name = format!("{} [{label}]", self.base.name);
            }
            out.push((label, scenario));
        }
        out
    }
}

/// One row of a sweep comparison: the expanded source's swept-axis
/// label and its full fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRow {
    /// The `axis=value …` fragment naming this cell (empty for a
    /// no-sweep file's single row).
    pub label: String,
    /// The user source that produced the row (synthetic scenario or
    /// corpus replay).
    pub source: UserSource,
    /// The aggregate outcome (identical to `run_source(&source, t)` for
    /// any `t ≥ 1`).
    pub report: FleetReport,
}

impl SweepRow {
    /// The synthetic scenario behind this row, when there is one.
    pub fn scenario(&self) -> Option<&Scenario> {
        match &self.source {
            UserSource::Synthetic(scenario) => Some(scenario),
            UserSource::Corpus(_) => None,
        }
    }
}

/// The outcome of running every expansion of a [`ScenarioSet`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// The base scenario's name.
    pub name: String,
    /// One row per expansion, in [`ScenarioSet::expand`] order.
    pub rows: Vec<SweepRow>,
}

/// Runs every expansion of `set` on `threads` worker threads, folding
/// the results into a side-by-side comparison.
///
/// Expansions run sequentially — each one already saturates the thread
/// pool via the sharded runner — so peak memory stays one trace per
/// worker regardless of how many cells the sweep has.
pub fn run_sweep(set: &ScenarioSet, threads: usize) -> SweepReport {
    run_sweep_observed(set, threads, Obs::none())
}

/// [`run_sweep`] under an [`Obs`] handle. Every cell shares the same
/// recorder and progress table; each row's report still carries its
/// own per-run phase breakdown (the runner diffs recorder snapshots
/// around each cell).
///
/// Sweeps cache by default: cells run against a fresh in-memory
/// [`RequestCache`], so an admission or scheme sweep over a cell
/// topology pays one phase-1 extraction and replays it for every later
/// cell. This is invisible in the results — every cell stays
/// bit-identical to running its expansion individually (the contract
/// in the module docs) — and only shows in the `cache_*` counters and
/// the wall clock. Pass an explicit cache (or `None`) through
/// [`run_sweep_cached`] to persist across calls or opt out.
pub fn run_sweep_observed(set: &ScenarioSet, threads: usize, obs: Obs<'_>) -> SweepReport {
    let cache = RequestCache::in_memory();
    run_sweep_cached(set, threads, obs, Some(&cache))
}

/// [`run_sweep_observed`] against a caller-owned [`RequestCache`]
/// (or none at all): a disk-backed cache warms later processes, a
/// shared cache warms later sweeps, `None` disables caching entirely.
pub fn run_sweep_cached(
    set: &ScenarioSet,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&RequestCache>,
) -> SweepReport {
    let rows = set
        .expand_labeled()
        .into_iter()
        .map(|(label, scenario)| {
            let report = run_cached(&scenario, threads, obs, cache);
            SweepRow { label, source: UserSource::Synthetic(scenario), report }
        })
        .collect();
    SweepReport { name: set.base.name.clone(), rows }
}

/// Runs every expansion of a [`SourceSet`] — the corpus-aware
/// counterpart of [`run_sweep`], with the same sequential-expansion
/// memory bound. A corpus sweep holds the corpus fixed while varying
/// scheme or carrier: the directory walk is resolved **once**, before
/// the first cell, and every cell replays that pinned index→file
/// assignment — a file appearing or vanishing mid-sweep cannot make
/// cells compare different populations (an unreadable file still aborts
/// the cell that touches it). Fails on the first expansion whose corpus
/// cannot be resolved or replayed.
pub fn run_source_sweep(set: &SourceSet, threads: usize) -> Result<SweepReport, ScenError> {
    run_source_sweep_observed(set, threads, Obs::none())
}

/// [`run_source_sweep`] under an [`Obs`] handle (see
/// [`run_sweep_observed`] for how sweep cells share the recorder and
/// why synthetic rows cache by default).
pub fn run_source_sweep_observed(
    set: &SourceSet,
    threads: usize,
    obs: Obs<'_>,
) -> Result<SweepReport, ScenError> {
    let cache = RequestCache::in_memory();
    run_source_sweep_cached(set, threads, obs, Some(&cache))
}

/// [`run_source_sweep_observed`] against a caller-owned
/// [`RequestCache`] (or none). Only synthetic rows consult the cache;
/// corpus rows replay the pinned directory walk, which is already
/// resolved exactly once per sweep (the `corpus_walks` counter pins
/// that invariant).
pub fn run_source_sweep_cached(
    set: &SourceSet,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&RequestCache>,
) -> Result<SweepReport, ScenError> {
    let report = run_source_sweep_streamed(set, threads, obs, cache, &mut |_, _| true)?;
    Ok(report.expect("an always-continue callback never cancels a sweep"))
}

/// [`run_source_sweep_cached`] with a per-row callback: `on_row(index,
/// row)` fires as soon as each cell finishes, before the next cell
/// starts. This is the fleet service's streaming hook — rows reach a
/// watching client while later cells are still running — and its
/// cancellation point: returning `false` stops the sweep between cells
/// and the whole call returns `Ok(None)`.
///
/// The rows a callback observes are exactly the rows of the final
/// [`SweepReport`] — one implementation produces both, so a streamed
/// sweep stays bit-identical to a batch [`run_source_sweep_cached`] of
/// the same set.
pub fn run_source_sweep_streamed(
    set: &SourceSet,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&RequestCache>,
    on_row: &mut dyn FnMut(usize, &SweepRow) -> bool,
) -> Result<Option<SweepReport>, ScenError> {
    let pinned = match &set.source {
        UserSource::Corpus(corpus) => Some(corpus.resolve_observed(obs)?),
        UserSource::Synthetic(_) => None,
    };
    let mut rows = Vec::with_capacity(set.expansion_count());
    for (index, (label, source)) in set.expand_labeled()?.into_iter().enumerate() {
        let report = match (&source, &pinned) {
            (UserSource::Corpus(corpus), Some(pinned)) => {
                crate::runner::run_pinned_corpus_observed(corpus, pinned, threads, obs)?
            }
            _ => run_source_cached(&source, threads, obs, cache)?,
        };
        let row = SweepRow { label, source, report };
        let keep_going = on_row(index, &row);
        rows.push(row);
        if !keep_going {
            return Ok(None);
        }
    }
    Ok(Some(SweepReport { name: set.source.name().to_string(), rows }))
}

impl SweepReport {
    /// The side-by-side comparison table (the Fig. 10/11 shape: one row
    /// per cell, savings and switch columns against the shared status
    /// quo normalizer, a MakeActive delay column, and — when any row ran
    /// a cell topology — the signaling-load columns).
    pub fn render(&self) -> String {
        let label_width =
            self.rows.iter().map(|r| r.label.len()).max().unwrap_or(0).max("variant".len());
        let signaling = self.rows.iter().any(|r| r.report.signaling.is_some());
        let mut out = String::new();
        out.push_str(&format!("sweep    : {} ({} runs)\n", self.name, self.rows.len()));
        out.push_str(&format!(
            "{:<label_width$} {:>9} {:>13} {:>8} {:>8} {:>8} {:>9} {:>9}",
            "variant", "users", "energy (J)", "saved", "p50", "p95", "switch×", "dly p95"
        ));
        if signaling {
            out.push_str(&format!(
                " {:>9} {:>7} {:>7} {:>8}",
                "peak m/s", "ovl s", "rnc ovl", "denied"
            ));
        }
        out.push_str(&format!(" {:>10}\n", "ud/sec"));
        for row in &self.rows {
            let r = &row.report;
            let pct =
                |q: f64| r.savings.percentile(q).map(|v| format!("{v:.1}")).unwrap_or("-".into());
            let delay = r
                .session_delay_percentile(0.95)
                .map(|v| format!("{v:.2}s"))
                .unwrap_or_else(|| "-".into());
            out.push_str(&format!(
                "{:<label_width$} {:>9} {:>13.1} {:>7.1}% {:>8} {:>8} {:>8.2}× {:>9}",
                if row.label.is_empty() { "(base)" } else { &row.label },
                r.users,
                r.energy_j,
                r.aggregate_savings_pct(),
                pct(0.50),
                pct(0.95),
                r.normalized_switches(),
                delay,
            ));
            if signaling {
                match &r.signaling {
                    Some(s) => out.push_str(&format!(
                        " {:>9} {:>7} {:>7} {:>8}",
                        s.peak_messages_per_s(),
                        s.overload_seconds(),
                        s.rnc_overload_seconds(),
                        s.denied(),
                    )),
                    None => out.push_str(&format!(" {:>9} {:>7} {:>7} {:>8}", "-", "-", "-", "-")),
                }
            }
            out.push_str(&format!(" {:>10.1}\n", r.user_days_per_sec()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run;
    use tailwise_workload::apps::AppKind;

    fn base() -> Scenario {
        let mut s = Scenario::new(6, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.shard_size = 4;
        s.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Finance, 1.0)];
        s
    }

    fn sweep_set() -> ScenarioSet {
        ScenarioSet {
            base: base(),
            axes: vec![
                SweepAxis::Schemes(vec![Scheme::StatusQuo, Scheme::MakeIdle]),
                SweepAxis::Users(vec![4, 6, 9]),
            ],
        }
    }

    #[test]
    fn expansion_is_a_cartesian_product_in_declared_order() {
        let set = sweep_set();
        assert_eq!(set.expansion_count(), 6);
        let expanded = set.expand();
        assert_eq!(expanded.len(), 6);
        // First axis slowest: statusquo×{4,6,9}, then makeidle×{4,6,9}.
        assert_eq!(expanded[0].scheme, Scheme::StatusQuo);
        assert_eq!(expanded[0].users, 4);
        assert_eq!(expanded[2].users, 9);
        assert_eq!(expanded[3].scheme, Scheme::MakeIdle);
        assert_eq!(expanded[3].users, 4);
        assert!(expanded[5].name.ends_with("[scheme=makeidle users=9]"), "{}", expanded[5].name);
        // Non-swept identity fields are untouched.
        for s in &expanded {
            assert_eq!(s.master_seed, set.base.master_seed);
            assert_eq!(s.shard_size, set.base.shard_size);
            assert_eq!(s.app_mix, set.base.app_mix);
        }
    }

    #[test]
    fn empty_axes_expand_to_the_base_alone() {
        let set = ScenarioSet { base: base(), axes: vec![] };
        let expanded = set.expand();
        assert_eq!(expanded.len(), 1);
        assert_eq!(expanded[0], set.base);
        let report = run_sweep(&set, 2);
        assert_eq!(report.rows.len(), 1);
        assert_eq!(report.rows[0].label, "");
        assert!(report.render().contains("(base)"));
    }

    #[test]
    fn sweep_cells_match_individual_runs_at_any_thread_count() {
        // The acceptance claim: per-cell numbers are bit-identical to
        // running each expanded scenario on its own, at any thread
        // count.
        let set = sweep_set();
        let sweep = run_sweep(&set, 4);
        for (row, scenario) in sweep.rows.iter().zip(set.expand()) {
            assert_eq!(row.scenario(), Some(&scenario));
            assert_eq!(row.report, run(&scenario, 1), "{}", scenario.name);
            assert_eq!(row.report, run(&scenario, 8), "{}", scenario.name);
        }
    }

    #[test]
    fn corpus_sources_sweep_schemes_but_not_users() {
        use crate::source::CorpusScenario;
        let base = UserSource::Corpus(CorpusScenario::new(
            "corpus",
            Scheme::MakeIdle,
            CarrierProfile::att_hspa(),
        ));
        let set = SourceSet {
            source: base.clone(),
            axes: vec![SweepAxis::Schemes(vec![Scheme::FixedTail45, Scheme::Oracle])],
        };
        let expanded = set.expand_labeled().unwrap();
        assert_eq!(expanded.len(), 2);
        assert_eq!(expanded[0].0, "scheme=tail45");
        assert_eq!(expanded[1].1.scheme(), Scheme::Oracle);
        assert!(expanded[1].1.name().ends_with("[scheme=oracle]"), "{}", expanded[1].1.name());

        let set = SourceSet { source: base, axes: vec![SweepAxis::Users(vec![5, 10])] };
        let err = set.expand_labeled().unwrap_err();
        assert!(err.message.contains("requires a synthetic scenario"), "{err}");
    }

    #[test]
    fn carrier_axis_replaces_the_mix() {
        let set = ScenarioSet {
            base: base(),
            axes: vec![SweepAxis::Carriers(vec![
                CarrierProfile::att_hspa(),
                CarrierProfile::verizon_lte(),
            ])],
        };
        let expanded = set.expand();
        assert_eq!(expanded[0].carrier_mix, vec![(CarrierProfile::att_hspa(), 1.0)]);
        assert!(expanded[0].name.contains("carrier=att-hspa"), "{}", expanded[0].name);
    }

    #[test]
    fn render_lines_up_one_row_per_cell() {
        let set = sweep_set();
        let table = run_sweep(&set, 2).render();
        assert_eq!(table.lines().count(), 2 + 6, "{table}");
        assert!(table.contains("scheme=statusquo users=4"), "{table}");
        assert!(table.contains("scheme=makeidle users=9"), "{table}");
    }
}
