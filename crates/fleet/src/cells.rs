//! Cell topologies: population-scale signaling load on the base-station
//! side (the paper's §7/§8 open question, at fleet scale).
//!
//! A [`CellTopology`] partitions a fleet's users across base-station
//! cells. Every user's fast-dormancy requests flow through its cell's
//! shared [`ReleasePolicy`] in global timestamp order, and the run
//! reports what each cell absorbed: grants, denials, total RRC
//! messages, per-second peak load, and overload seconds against a
//! configurable signaling capacity ([`FleetSignaling`]).
//!
//! ## The two-pass fleet runner
//!
//! The execution is the fleet-scale instance of the two-phase engine
//! API ([`tailwise_sim::twophase`]):
//!
//! 1. **Pass 1** — the sharded runner streams every user through the
//!    cheap phase-1 request scan ([`Scheme::request_trace`]): one trace
//!    materialized per worker, dropped immediately, only the
//!    time-stamped request stream kept.
//! 2. **Adjudication** — per cell, the merged request stream is sorted
//!    by `(time, user, seq)` and fed through a fresh instance of the
//!    cell's release policy, producing one verdict per request.
//! 3. **Pass 2** — the sharded runner *re-materializes* each user's
//!    trace (synthesis and corpus walks are deterministic, so the same
//!    index yields the same trace) and replays it exactly against its
//!    scripted verdicts ([`Scheme::run_scripted`]), folding energy into
//!    the [`FleetReport`] and RRC-message events into per-cell
//!    per-second load maps.
//!
//! Peak memory stays **one trace per worker** in both passes — the
//! re-synthesis/re-load is exactly what buys that bound. Between the
//! passes the run holds O(total requests) timestamps and, afterwards,
//! one verdict byte per request plus O(active seconds) load counters
//! per cell.
//!
//! ## Determinism
//!
//! User→cell assignment is a pure function of `(master_seed, user
//! index, cell count)` ([`cell_of`]); adjudication order is a total
//! order; per-second load counters are integer adds. With the frontier
//! merging shard partials in shard order, a cell run is bit-identical
//! at any thread count — the same contract the radio-isolated runner
//! makes, pinned by `tests/cell_fleet.rs`.
//!
//! ## Scheme restrictions
//!
//! Cell topologies require a *scriptable* scheme
//! ([`Scheme::scriptable`]): the MakeActive variants batch sessions
//! based on the radio being Idle — i.e. on earlier grant outcomes — so
//! their two-pass replay would not be exact. Scenario files reject the
//! combination at parse time with a positioned error; programmatic
//! misuse panics here.

use std::collections::BTreeMap;

use tailwise_core::schemes::Scheme;
use tailwise_radio::fastdormancy::{AlwaysAccept, RateLimited, ReleasePolicy};
use tailwise_radio::profile::CarrierProfile;
use tailwise_radio::signaling::SignalingModel;
use tailwise_scenfile::ScenError;
use tailwise_sim::engine::SimConfig;
use tailwise_trace::corpus::Corpus;
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::{Duration, Instant};
use tailwise_trace::Trace;

use crate::report::{CellLoad, FleetReport, FleetSignaling};
use crate::runner::{days_spanned, load_corpus_trace, run_sharded, Partial};
use crate::scenario::{draw_carrier, user_seed, Scenario};
use crate::source::CorpusScenario;

/// The base-station admission behavior every cell runs.
///
/// A declarative (file-representable) subset of
/// [`ReleasePolicy`]; each cell builds a fresh instance, so cells never
/// share admission state.
#[derive(Debug, Clone, PartialEq)]
pub enum ReleaseSpec {
    /// The paper's modeling assumption: every request is honored (§2.2).
    AlwaysAccept,
    /// At most one grant per `min_interval` per cell — a base station
    /// protecting itself from fast-dormancy storms (§8).
    RateLimited {
        /// Minimum spacing between grants.
        min_interval: Duration,
    },
}

impl ReleaseSpec {
    /// The stable on-disk token (`release = "..."` in `[cells]`).
    pub fn token(&self) -> &'static str {
        match self {
            ReleaseSpec::AlwaysAccept => "always",
            ReleaseSpec::RateLimited { .. } => "rate-limited",
        }
    }

    /// Builds one cell's release policy instance.
    pub fn build(&self) -> Box<dyn ReleasePolicy> {
        match self {
            ReleaseSpec::AlwaysAccept => Box::new(AlwaysAccept),
            ReleaseSpec::RateLimited { min_interval } => Box::new(RateLimited::new(*min_interval)),
        }
    }
}

/// A fleet's cell topology: how many cells, what each can absorb, and
/// how each admits fast-dormancy requests.
///
/// Part of the scenario's deterministic identity (and of the on-disk
/// format, as the `[cells]` table — see `docs/SCENARIO_FORMAT.md` §6).
#[derive(Debug, Clone, PartialEq)]
pub struct CellTopology {
    /// Number of cells (≥ 1). Users are assigned by [`cell_of`].
    pub cells: u64,
    /// RRC messages per second a cell can absorb before a second counts
    /// as overloaded (`None` = unbounded; accounting only — admission
    /// is the `release` policy's job).
    pub capacity_per_s: Option<u64>,
    /// Per-cell admission policy for fast-dormancy requests.
    pub release: ReleaseSpec,
    /// RRC message weights per transition kind. Not expressible in
    /// scenario files (they always use the default); `to_file` refuses
    /// a customized model rather than silently dropping it.
    pub signaling: SignalingModel,
}

impl CellTopology {
    /// A topology of `cells` always-accepting, unbounded-capacity cells.
    ///
    /// # Panics
    /// If `cells` is zero.
    pub fn new(cells: u64) -> CellTopology {
        assert!(cells >= 1, "a cell topology needs at least one cell");
        CellTopology {
            cells,
            capacity_per_s: None,
            release: ReleaseSpec::AlwaysAccept,
            signaling: SignalingModel::default(),
        }
    }
}

/// The deterministic user→cell assignment: a pure function of the
/// scenario master seed, the user index, and the cell count.
///
/// Derived from [`user_seed`] with an extra mixing round so cell
/// assignment does not correlate with any draw the user's own RNG makes
/// (carrier, app mix, trace). The modulo over a well-mixed 64-bit hash
/// gives each cell a near-uniform share; the bias for any realistic
/// cell count is < 2⁻⁵⁰ and, crucially, identical on every machine.
pub fn cell_of(master_seed: u64, index: u64, cells: u64) -> u64 {
    assert!(cells >= 1, "a cell topology needs at least one cell");
    splitmix(user_seed(master_seed, index) ^ 0xCE11_BA5E_0000_0000) % cells
}

/// Uniform access to a fleet population for the two-pass runner:
/// materialize user `i` (carrier, trace, user-days) on demand, in any
/// order, from any worker.
trait CellUsers: Sync {
    /// Population size.
    fn users(&self) -> u64;
    /// Users per shard (the deterministic reduction order).
    fn shard_size(&self) -> u64;
    /// Materializes user `index`. Must be deterministic: both passes
    /// call it for every user, and pass 2 must see pass 1's trace.
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError>;
}

struct SyntheticUsers<'a>(&'a Scenario);

impl CellUsers for SyntheticUsers<'_> {
    fn users(&self) -> u64 {
        self.0.users
    }
    fn shard_size(&self) -> u64 {
        self.0.shard_size.max(1)
    }
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError> {
        let (carrier, model) = self.0.user(index);
        let days = model.days;
        Ok((carrier, model.generate(), days))
    }
}

struct CorpusUsers<'a> {
    scenario: &'a CorpusScenario,
    corpus: &'a Corpus,
}

impl CellUsers for CorpusUsers<'_> {
    fn users(&self) -> u64 {
        self.corpus.len() as u64
    }
    fn shard_size(&self) -> u64 {
        self.scenario.shard_size.max(1)
    }
    fn user(&self, index: u64) -> Result<(CarrierProfile, Trace, u32), ScenError> {
        let trace = load_corpus_trace(self.scenario, self.corpus, index)?;
        let carrier = draw_carrier(&self.scenario.carrier_mix, self.scenario.master_seed, index);
        let days = days_spanned(&trace);
        Ok((carrier, trace, days))
    }
}

/// Runs a synthetic scenario through its cell topology. Called by
/// [`crate::runner::run`] when `scenario.cells` is set; infallible in
/// practice (synthesis cannot fail), fallible in type for the shared
/// core.
pub(crate) fn run_cells_synthetic(
    scenario: &Scenario,
    topology: &CellTopology,
    threads: usize,
) -> Result<FleetReport, ScenError> {
    let empty = || FleetReport::empty(scenario.name.clone(), scenario.scheme.label());
    run_cells(
        &SyntheticUsers(scenario),
        scenario.scheme,
        &scenario.sim,
        topology,
        scenario.master_seed,
        &empty,
        threads,
    )
}

/// Runs a corpus replay through its cell topology against an
/// already-resolved file list. Called by
/// [`crate::runner::run_pinned_corpus`] when `scenario.cells` is set.
pub(crate) fn run_cells_corpus(
    scenario: &CorpusScenario,
    corpus: &Corpus,
    topology: &CellTopology,
    threads: usize,
) -> Result<FleetReport, ScenError> {
    let source_label = format!("corpus {} ({} traces)", scenario.spec.dir.display(), corpus.len());
    let empty = || {
        let mut report = FleetReport::empty(scenario.name.clone(), scenario.scheme.label());
        report.source = source_label.clone();
        report
    };
    run_cells(
        &CorpusUsers { scenario, corpus },
        scenario.scheme,
        &scenario.sim,
        topology,
        scenario.master_seed,
        &empty,
        threads,
    )
}

/// Pass-2 shard partial: the energy fold plus each cell's per-second
/// RRC-message counters. Counter addition commutes, but the frontier
/// still folds in shard order, keeping the whole partial deterministic.
struct CellPartial {
    report: FleetReport,
    /// Per cell: second index → RRC messages in that second.
    seconds: Vec<BTreeMap<i64, u64>>,
}

impl Partial for CellPartial {
    fn absorb(&mut self, other: CellPartial) {
        self.report.merge(&other.report);
        for (mine, theirs) in self.seconds.iter_mut().zip(other.seconds) {
            for (second, messages) in theirs {
                *mine.entry(second).or_insert(0) += messages;
            }
        }
    }
}

/// The two-pass core shared by synthetic and corpus cell runs. See the
/// module docs for the pass structure and memory bounds.
fn run_cells<U: CellUsers>(
    access: &U,
    scheme: Scheme,
    sim: &SimConfig,
    topology: &CellTopology,
    master_seed: u64,
    empty: &(dyn Fn() -> FleetReport + Sync),
    threads: usize,
) -> Result<FleetReport, ScenError> {
    assert!(
        scheme.scriptable(),
        "scheme {:?} cannot run on a cell topology: MakeActive batching depends on grant \
         outcomes, so the two-pass replay is not exact (scenario files reject this at parse \
         time)",
        scheme
    );
    assert!(topology.cells >= 1, "a cell topology needs at least one cell");

    let users = access.users();
    let shard_size = access.shard_size();
    let shard_count = users.div_ceil(shard_size);
    let shard_range = |shard: u64| {
        let lo = (shard * shard_size).min(users);
        let hi = ((shard + 1) * shard_size).min(users);
        lo..hi
    };

    // ---- Pass 1: cheap request extraction (one trace per worker). ----
    let request_streams: Vec<(u64, Vec<Instant>)> =
        run_sharded(shard_count, threads, &Vec::new, &|shard| {
            let mut partial = Vec::new();
            for index in shard_range(shard) {
                let (carrier, trace, _) = access.user(index)?;
                let requests = scheme
                    .request_trace(&carrier, sim, &trace)
                    .expect("scriptable scheme always yields a request trace");
                partial.push((index, requests.times));
                // `trace` drops here: pass 1 keeps only the requests.
            }
            Ok(partial)
        })?;
    debug_assert!(
        request_streams.iter().enumerate().all(|(at, (index, _))| at as u64 == *index),
        "shard-order merge must reassemble users in index order"
    );

    // ---- Adjudication: each cell replays its merged stream. ----------
    let cell_count = topology.cells as usize;
    let mut per_cell: Vec<Vec<(Instant, u64, u32)>> = vec![Vec::new(); cell_count];
    let mut cell_users = vec![0u64; cell_count];
    let mut verdicts: Vec<Vec<bool>> = Vec::with_capacity(request_streams.len());
    for (index, times) in &request_streams {
        let cell = cell_of(master_seed, *index, topology.cells) as usize;
        cell_users[cell] += 1;
        for (seq, &at) in times.iter().enumerate() {
            per_cell[cell].push((at, *index, seq as u32));
        }
        verdicts.push(vec![false; times.len()]);
    }
    drop(request_streams);

    let mut loads: Vec<CellLoad> =
        cell_users.iter().map(|&users| CellLoad { users, ..CellLoad::default() }).collect();
    for (cell, stream) in per_cell.iter_mut().enumerate() {
        // Global time order within the cell; ties broken by user index
        // then sequence, deterministically.
        stream.sort_unstable();
        let mut release = topology.release.build();
        for &(at, user, seq) in stream.iter() {
            let ok = release.accept(at);
            verdicts[user as usize][seq as usize] = ok;
            if ok {
                loads[cell].granted += 1;
            } else {
                loads[cell].denied += 1;
            }
        }
    }
    drop(per_cell);
    let verdicts = &verdicts;

    // ---- Pass 2: exact replay, energy fold + per-second load. --------
    // The default transition_log_limit is a safety cap for interactive
    // use; here a truncated log would silently undercount cell load, so
    // lift it — the log is per user and dropped before the next one.
    let replay_sim =
        SimConfig { record_transitions: true, transition_log_limit: usize::MAX, ..sim.clone() };
    let empty_partial =
        || CellPartial { report: empty(), seconds: vec![BTreeMap::new(); cell_count] };
    let folded: CellPartial = run_sharded(shard_count, threads, &empty_partial, &|shard| {
        let mut partial = empty_partial();
        for index in shard_range(shard) {
            let (carrier, trace, days) = access.user(index)?;
            let baseline = Scheme::StatusQuo.run(&carrier, sim, &trace);
            let mut scheme_run = scheme
                .run_scripted(&carrier, &replay_sim, &trace, &verdicts[index as usize])
                .expect("scriptable scheme always replays");
            let cell = cell_of(master_seed, index, topology.cells) as usize;
            if let Some(transitions) = scheme_run.transitions.take() {
                let seconds = &mut partial.seconds[cell];
                for t in &transitions {
                    let second = t.at.as_micros().div_euclid(1_000_000);
                    *seconds.entry(second).or_insert(0) +=
                        topology.signaling.messages_for(t) as u64;
                }
            }
            partial.report.fold_user(days, &scheme_run, &baseline);
            // `trace` drops here: pass 2 is load→replay→discard again.
        }
        Ok(partial)
    })?;

    // ---- Per-cell load accounting. -----------------------------------
    let CellPartial { mut report, seconds } = folded;
    for (cell, seconds) in seconds.into_iter().enumerate() {
        let load = &mut loads[cell];
        for (_, messages) in seconds {
            load.total_messages += messages;
            load.peak_messages_per_s = load.peak_messages_per_s.max(messages);
            if let Some(cap) = topology.capacity_per_s {
                if messages > cap {
                    load.overload_seconds += 1;
                }
            }
        }
    }
    report.signaling =
        Some(FleetSignaling { capacity_per_s: topology.capacity_per_s, cells: loads });
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_assignment_is_deterministic_and_roughly_uniform() {
        let cells = 8u64;
        let counts = (0..8000).fold(vec![0u64; cells as usize], |mut acc, i| {
            acc[cell_of(7, i, cells) as usize] += 1;
            acc
        });
        for (cell, &n) in counts.iter().enumerate() {
            assert!((800..1200).contains(&n), "cell {cell} holds {n} of 8000 users");
        }
        assert_eq!(cell_of(7, 42, cells), cell_of(7, 42, cells));
        // The assignment is seed-sensitive: a different master seed
        // shuffles users across cells.
        let moved = (0..1000).filter(|&i| cell_of(7, i, cells) != cell_of(8, i, cells)).count();
        assert!(moved > 500, "only {moved} of 1000 users moved on reseed");
    }

    #[test]
    fn single_cell_topologies_pin_everyone_to_cell_zero() {
        for i in 0..100 {
            assert_eq!(cell_of(1, i, 1), 0);
        }
    }

    #[test]
    fn release_spec_tokens_and_builders() {
        assert_eq!(ReleaseSpec::AlwaysAccept.token(), "always");
        let limited = ReleaseSpec::RateLimited { min_interval: Duration::from_secs(5) };
        assert_eq!(limited.token(), "rate-limited");
        let mut policy = limited.build();
        assert!(policy.accept(Instant::ZERO));
        assert!(!policy.accept(Instant::from_secs(1)));
        assert!(policy.accept(Instant::from_secs(5)));
        let mut always = ReleaseSpec::AlwaysAccept.build();
        assert!((0..10).all(|i| always.accept(Instant::from_secs(i))));
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn zero_cell_topologies_are_rejected() {
        CellTopology::new(0);
    }
}
