//! Sharded, multi-threaded fleet execution.
//!
//! The population is partitioned into fixed shards of
//! [`Scenario::shard_size`] users. Worker threads claim shards from an
//! atomic cursor (work stealing keeps long shards from serializing the
//! run), and each worker streams its shard generate→simulate→discard:
//! one user's trace is materialized, pushed through the scheme under
//! test and the status-quo baseline, folded into the shard's partial
//! [`FleetReport`], and dropped before the next user is touched. Peak
//! memory is one trace per worker thread plus O(threads) buffered shard
//! partials at the merge frontier — independent of population size.
//!
//! Determinism: which thread simulates a shard never matters. User
//! synthesis is a pure function of `(scenario, user index)`
//! ([hierarchical seeding](crate::scenario::user_seed)), folds happen in
//! user order within each shard, and shard partials merge in shard-index
//! order at a streaming frontier — fixing the floating-point reduction
//! tree, so the same scenario yields a bit-identical report at any
//! thread count.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use tailwise_core::schemes::Scheme;

use crate::report::FleetReport;
use crate::scenario::Scenario;

/// Merge frontier: folds shard partials into the total strictly in
/// shard-index order, buffering only partials that finish ahead of the
/// frontier. Keeps the reduction tree fixed — and therefore the report
/// bit-identical — while the `run` loop bounds the buffer, so memory
/// stays O(threads) rather than O(shard_count) even when one slow shard
/// stalls the frontier.
struct Frontier {
    total: FleetReport,
    next: u64,
    pending: BTreeMap<u64, FleetReport>,
}

impl Frontier {
    /// Inserts a partial and advances the frontier as far as it now
    /// reaches. Returns true if the frontier moved.
    fn push(&mut self, shard: u64, partial: FleetReport) -> bool {
        self.pending.insert(shard, partial);
        let before = self.next;
        while let Some(partial) = self.pending.remove(&self.next) {
            self.total.merge(&partial);
            self.next += 1;
        }
        self.next != before
    }
}

/// Runs `scenario` across `threads` worker threads.
///
/// `threads` is purely an execution knob: any value ≥ 1 produces the
/// same [`FleetReport`] (see the module docs). Zero is treated as 1.
pub fn run(scenario: &Scenario, threads: usize) -> FleetReport {
    let started = std::time::Instant::now();
    let threads = threads.max(1);
    let shard_count = scenario.shard_count();
    let cursor = AtomicU64::new(0);
    let frontier =
        Mutex::new(Frontier { total: empty_report(scenario), next: 0, pending: BTreeMap::new() });
    let merged = Condvar::new();
    // Out-of-order partials a worker may buffer before it must wait for
    // the frontier to catch up. The worker holding the frontier shard is
    // always allowed to push, so the wait cannot deadlock.
    let pending_cap = threads * 2 + 4;

    std::thread::scope(|scope| {
        for _ in 0..threads.min(shard_count.max(1) as usize) {
            scope.spawn(|| loop {
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                if shard >= shard_count {
                    break;
                }
                let partial = run_shard(scenario, shard);
                let mut f = frontier.lock().expect("fleet frontier lock");
                while shard != f.next && f.pending.len() >= pending_cap {
                    f = merged.wait(f).expect("fleet frontier lock");
                }
                if f.push(shard, partial) {
                    merged.notify_all();
                }
            });
        }
    });

    let frontier = frontier.into_inner().expect("fleet frontier lock");
    debug_assert!(frontier.pending.is_empty(), "all shards merged");
    let mut report = frontier.total;
    report.wall_seconds = started.elapsed().as_secs_f64();
    report.threads = threads;
    report
}

/// Simulates one shard serially, folding users in index order.
fn run_shard(scenario: &Scenario, shard: u64) -> FleetReport {
    let mut partial = empty_report(scenario);
    for index in scenario.shard_range(shard) {
        let (carrier, model) = scenario.user(index);
        let trace = model.generate();
        let baseline = Scheme::StatusQuo.run(&carrier, &scenario.sim, &trace);
        let scheme_run = if scenario.scheme == Scheme::StatusQuo {
            baseline.clone()
        } else {
            scenario.scheme.run(&carrier, &scenario.sim, &trace)
        };
        partial.fold_user(model.days, &scheme_run, &baseline);
        // `trace` drops here: generate-simulate-discard.
    }
    partial
}

fn empty_report(scenario: &Scenario) -> FleetReport {
    FleetReport::empty(scenario.name.clone(), scenario.scheme.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_radio::profile::CarrierProfile;

    fn tiny(users: u64) -> Scenario {
        let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.shard_size = 4;
        s
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let s = tiny(3);
        let r = run(&s, 64);
        assert_eq!(r.users, 3);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn zero_users_yields_empty_report() {
        let r = run(&tiny(0), 4);
        assert_eq!(r.users, 0);
        assert_eq!(r.energy_j, 0.0);
        assert_eq!(r.savings.count(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let s = tiny(2);
        assert_eq!(run(&s, 0), run(&s, 1));
    }

    #[test]
    fn status_quo_scenario_reports_zero_savings() {
        let mut s = tiny(4);
        s.scheme = Scheme::StatusQuo;
        let r = run(&s, 2);
        assert_eq!(r.users, 4);
        assert_eq!(r.energy_j.to_bits(), r.baseline_energy_j.to_bits());
        assert_eq!(r.aggregate_savings_pct(), 0.0);
        assert_eq!(r.switches, r.baseline_switches);
    }
}
