//! Sharded, multi-threaded fleet execution over any [`UserSource`].
//!
//! The population — synthetic users or corpus trace files — is
//! partitioned into fixed shards of `shard_size` users. Worker threads
//! claim shards from an atomic cursor (work stealing keeps long shards
//! from serializing the run), and each worker streams its shard
//! generate→simulate→discard (or, for corpora, load→simulate→discard):
//! one user's trace is materialized, pushed through the scheme under
//! test and the status-quo baseline, folded into the shard's partial
//! [`FleetReport`], and dropped before the next user is touched. Peak
//! memory is one trace per worker thread plus O(threads) buffered shard
//! partials at the merge frontier — independent of population (and
//! corpus) size.
//!
//! Determinism: which thread simulates a shard never matters. Synthetic
//! user synthesis is a pure function of `(scenario, user index)`
//! ([hierarchical seeding](crate::scenario::user_seed)); a corpus's
//! index→file assignment is fixed by its deterministic sorted walk.
//! Folds happen in user order within each shard, and shard partials
//! merge in shard-index order at a streaming frontier — fixing the
//! floating-point reduction tree, so the same source yields a
//! bit-identical report at any thread count. Corpus runs are
//! additionally fallible (disk contents can rot); on the first
//! unreadable trace the run aborts with a positioned error instead of a
//! report.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use tailwise_core::schemes::Scheme;
use tailwise_obs::{span, Obs, ProgressSlot, Recorder};
use tailwise_radio::profile::CarrierProfile;
use tailwise_scenfile::ScenError;
use tailwise_sim::engine::SimConfig;
use tailwise_trace::corpus::Corpus;
use tailwise_trace::Trace;

use crate::report::{FleetReport, RunTimings};
use crate::scenario::{draw_carrier, Scenario};
use crate::source::{CorpusScenario, UserSource};

/// A per-shard result the sharded core can fold in shard order.
///
/// The absorb order is fixed (strictly ascending shard index), so any
/// implementation whose `absorb` is deterministic — float folds
/// included — yields a bit-identical total at any thread count.
pub(crate) trait Partial: Send {
    /// Folds `other` (the next shard, in shard order) into `self`.
    fn absorb(&mut self, other: Self);
}

impl Partial for FleetReport {
    fn absorb(&mut self, other: FleetReport) {
        self.merge(&other);
    }
}

/// Ordered accumulation: concatenating per-shard vectors in shard order
/// yields the population in user-index order (the topology runner's
/// pass-1 request collection).
impl<T: Send> Partial for Vec<T> {
    fn absorb(&mut self, mut other: Vec<T>) {
        self.append(&mut other);
    }
}

/// Merge frontier: folds shard partials into the total strictly in
/// shard-index order, buffering only partials that finish ahead of the
/// frontier. Keeps the reduction tree fixed — and therefore the report
/// bit-identical — while the worker loop bounds the buffer, so memory
/// stays O(threads) rather than O(shard_count) even when one slow shard
/// stalls the frontier.
struct Frontier<P: Partial> {
    total: P,
    next: u64,
    pending: BTreeMap<u64, P>,
}

impl<P: Partial> Frontier<P> {
    /// Inserts a partial and advances the frontier as far as it now
    /// reaches. Returns true if the frontier moved.
    fn push(&mut self, shard: u64, partial: P) -> bool {
        self.pending.insert(shard, partial);
        let before = self.next;
        while let Some(partial) = self.pending.remove(&self.next) {
            self.total.absorb(partial);
            self.next += 1;
        }
        self.next != before
    }
}

/// Runs `scenario` across `threads` worker threads.
///
/// `threads` is purely an execution knob: any value ≥ 1 produces the
/// same [`FleetReport`] (see the module docs). Zero is treated as 1.
///
/// Scenarios with a [`NetworkTopology`](crate::topology::NetworkTopology)
/// run through the two-pass topology runner instead of the radio-isolated
/// fold;
/// the determinism contract is identical.
pub fn run(scenario: &Scenario, threads: usize) -> FleetReport {
    run_observed(scenario, threads, Obs::none())
}

/// [`run`] under an [`Obs`] handle: spans, counters, worker busy time,
/// and live progress flow into `obs`; the report additionally carries a
/// [`RunTimings`] phase breakdown when the recorder is enabled.
///
/// Observation never perturbs the result: the report equals the
/// [`run`] report bit for bit at any thread count.
pub fn run_observed(scenario: &Scenario, threads: usize, obs: Obs<'_>) -> FleetReport {
    run_cached(scenario, threads, obs, None)
}

/// [`run_observed`] with an optional phase-1 [`RequestCache`](crate::cache::RequestCache).
///
/// The cache applies to cell-topology runs (the two-pass runner is
/// where phase 1 exists as a separate artifact); radio-isolated runs
/// ignore it. Caching never changes the report: a cached run is
/// bit-identical to an uncached one at any thread count — only the
/// `cache_*` counters and the wall clock differ.
pub fn run_cached(
    scenario: &Scenario,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&crate::cache::RequestCache>,
) -> FleetReport {
    timed(threads, obs, || {
        if let Some(topology) = &scenario.cells {
            crate::topology::run_topology_synthetic(scenario, topology, threads, obs, cache)
        } else {
            if let Some(table) = obs.progress {
                table.add_users_total(scenario.users);
            }
            run_sharded(
                scenario.shard_count(),
                threads,
                obs,
                &|| empty_report(scenario),
                &|shard, ctx| Ok(run_shard(scenario, shard, ctx, obs.recorder)),
            )
        }
    })
    .expect("synthetic shards are infallible")
}

/// Runs any [`UserSource`] across `threads` worker threads.
///
/// Synthetic sources never fail; corpus sources fail — with a
/// positioned [`ScenError`] — when the directory is missing or empty,
/// or when a trace file cannot be read mid-run. On success the
/// determinism contract is identical for both: a bit-identical report
/// at any thread count.
pub fn run_source(source: &UserSource, threads: usize) -> Result<FleetReport, ScenError> {
    run_source_observed(source, threads, Obs::none())
}

/// [`run_source`] under an [`Obs`] handle (see [`run_observed`]).
pub fn run_source_observed(
    source: &UserSource,
    threads: usize,
    obs: Obs<'_>,
) -> Result<FleetReport, ScenError> {
    run_source_cached(source, threads, obs, None)
}

/// [`run_source_observed`] with an optional phase-1 [`RequestCache`](crate::cache::RequestCache)
/// (see [`run_cached`]). Corpus sources have no synthesis fingerprint
/// and always run uncached.
pub fn run_source_cached(
    source: &UserSource,
    threads: usize,
    obs: Obs<'_>,
    cache: Option<&crate::cache::RequestCache>,
) -> Result<FleetReport, ScenError> {
    match source {
        UserSource::Synthetic(scenario) => Ok(run_cached(scenario, threads, obs, cache)),
        UserSource::Corpus(corpus) => run_corpus_observed(corpus, threads, obs),
    }
}

/// Replays an on-disk corpus: resolves the directory walk, tiles the
/// sorted file list into shards, and streams one trace per worker
/// through scheme-vs-baseline simulation.
pub fn run_corpus(scenario: &CorpusScenario, threads: usize) -> Result<FleetReport, ScenError> {
    run_corpus_observed(scenario, threads, Obs::none())
}

/// [`run_corpus`] under an [`Obs`] handle (see [`run_observed`]).
pub fn run_corpus_observed(
    scenario: &CorpusScenario,
    threads: usize,
    obs: Obs<'_>,
) -> Result<FleetReport, ScenError> {
    let corpus = scenario.resolve_observed(obs)?;
    run_pinned_corpus_observed(scenario, &corpus, threads, obs)
}

/// [`run_corpus`] against an already-resolved file list. Callers that
/// run the same corpus several times — sweep cells, scheme comparisons
/// — resolve once and pass the pinned [`Corpus`] here, so every run
/// replays the identical index→file assignment even if the directory
/// changes between runs.
pub fn run_pinned_corpus(
    scenario: &CorpusScenario,
    corpus: &Corpus,
    threads: usize,
) -> Result<FleetReport, ScenError> {
    run_pinned_corpus_observed(scenario, corpus, threads, Obs::none())
}

/// [`run_pinned_corpus`] under an [`Obs`] handle (see [`run_observed`]).
pub fn run_pinned_corpus_observed(
    scenario: &CorpusScenario,
    corpus: &Corpus,
    threads: usize,
    obs: Obs<'_>,
) -> Result<FleetReport, ScenError> {
    // Checked up front so a misconfigured mix is a typed error, not a
    // panic inside a worker thread (draw_carrier asserts non-empty).
    if scenario.carrier_mix.is_empty() {
        return Err(scenario
            .runtime_err("corpus scenario has an empty carrier mix; replay needs one".into()));
    }
    let users = corpus.len() as u64;
    let shard_size = scenario.shard_size.max(1);
    let shard_count = users.div_ceil(shard_size);
    let source_label = format!("corpus {} ({} traces)", scenario.spec.dir.display(), corpus.len());
    let empty = || {
        let mut report = FleetReport::empty(scenario.name.clone(), scenario.scheme.label());
        report.source = source_label.clone();
        report
    };
    timed(threads, obs, || {
        if let Some(topology) = &scenario.cells {
            crate::topology::run_topology_corpus(scenario, corpus, topology, threads, obs)
        } else {
            if let Some(table) = obs.progress {
                table.add_users_total(users);
            }
            run_sharded(shard_count, threads, obs, &empty, &|shard, ctx| {
                let traces_loaded = obs.recorder.counter("traces_loaded");
                let users_simulated = obs.recorder.counter("users_simulated");
                let days_counter = obs.recorder.counter("user_days");
                let mut partial = empty();
                let lo = shard * shard_size;
                let hi = ((shard + 1) * shard_size).min(users);
                for index in lo..hi {
                    let trace = {
                        let _synthesize = span(obs.recorder, "synthesize");
                        match load_corpus_trace(scenario, corpus, index) {
                            Ok(trace) => trace,
                            Err(e) => {
                                ctx.trace_failed();
                                return Err(e);
                            }
                        }
                    };
                    traces_loaded.incr();
                    let carrier = draw_carrier(&scenario.carrier_mix, scenario.master_seed, index);
                    let days = days_spanned(&trace);
                    {
                        let _simulate = span(obs.recorder, "simulate");
                        fold_one(
                            &mut partial,
                            scenario.scheme,
                            &carrier,
                            &scenario.sim,
                            &trace,
                            days,
                        );
                    }
                    users_simulated.incr();
                    days_counter.add(days as u64);
                    ctx.user_done(days as u64);
                    // `trace` drops here: load-simulate-discard.
                }
                Ok(partial)
            })
        }
    })
}

/// Shared wall-clock shell for every run entry point: snapshots the
/// recorder, times `body`, stamps `wall_seconds`/`threads` on the
/// report, records the whole run under the `"run"` span, and — when the
/// recorder is enabled — attaches the [`RunTimings`] extracted from
/// exactly this run's recorder delta.
fn timed(
    threads: usize,
    obs: Obs<'_>,
    body: impl FnOnce() -> Result<FleetReport, ScenError>,
) -> Result<FleetReport, ScenError> {
    let before = obs.recorder.enabled().then(|| obs.recorder.snapshot());
    let started = std::time::Instant::now();
    let mut report = body()?;
    let wall = started.elapsed();
    report.wall_seconds = wall.as_secs_f64();
    report.threads = threads.max(1);
    if let Some(before) = before {
        obs.recorder.record_span("run", wall.as_nanos() as u64);
        let delta = obs.recorder.snapshot().since(&before);
        report.timings = Some(RunTimings::from_snapshot(&delta, report.wall_seconds));
    }
    Ok(report)
}

/// Loads one corpus member, wrapping failures in the scenario's
/// positioned runtime error (shared by the isolated and cell paths).
pub(crate) fn load_corpus_trace(
    scenario: &CorpusScenario,
    corpus: &Corpus,
    index: u64,
) -> Result<Trace, ScenError> {
    corpus.load(index as usize).map_err(|e| {
        scenario.runtime_err(format!(
            "cannot replay trace file {}: {e}",
            corpus.path(index as usize).display()
        ))
    })
}

/// Per-worker context handed to every `shard_fn` call: where to
/// publish live progress (when a [`ProgressTable`](tailwise_obs::ProgressTable)
/// is attached). Both methods are no-ops when progress is off.
pub(crate) struct ShardCtx<'a> {
    slot: Option<&'a ProgressSlot>,
}

impl ShardCtx<'_> {
    /// Publishes one finished user contributing `days` user-days.
    pub(crate) fn user_done(&self, days: u64) {
        if let Some(slot) = self.slot {
            slot.add_user(days);
        }
    }

    /// Publishes one failed trace load.
    pub(crate) fn trace_failed(&self) {
        if let Some(slot) = self.slot {
            slot.add_failure();
        }
    }
}

/// The sharded execution core shared by synthetic, corpus, and
/// cell-topology runs: work-stealing shard claims, bounded out-of-order
/// buffering, and the in-order merge frontier over any [`Partial`].
/// `shard_fn` is called once per shard index; its first error (if any)
/// aborts the run — remaining workers stop claiming shards — and
/// becomes the overall result.
///
/// Observation rides along without touching the schedule: workers
/// publish the claimed shard and per-user progress through the
/// [`ShardCtx`], and per-worker busy time (clock read only when the
/// recorder is enabled) lands in `obs.recorder`.
pub(crate) fn run_sharded<P: Partial>(
    shard_count: u64,
    threads: usize,
    obs: Obs<'_>,
    empty: &(dyn Fn() -> P + Sync),
    shard_fn: &(dyn Fn(u64, &ShardCtx) -> Result<P, ScenError> + Sync),
) -> Result<P, ScenError> {
    let threads = threads.max(1);
    let cursor = AtomicU64::new(0);
    let failed = AtomicBool::new(false);
    let error: Mutex<Option<ScenError>> = Mutex::new(None);
    let frontier = Mutex::new(Frontier { total: empty(), next: 0, pending: BTreeMap::new() });
    let merged = Condvar::new();
    // Out-of-order partials a worker may buffer before it must wait for
    // the frontier to catch up. The worker holding the frontier shard is
    // always allowed to push, so the wait cannot deadlock.
    let pending_cap = threads * 2 + 4;

    std::thread::scope(|scope| {
        for worker in 0..threads.min(shard_count.max(1) as usize) {
            let cursor = &cursor;
            let failed = &failed;
            let error = &error;
            let frontier = &frontier;
            let merged = &merged;
            scope.spawn(move || loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let shard = cursor.fetch_add(1, Ordering::Relaxed);
                if shard >= shard_count {
                    break;
                }
                let slot = obs.progress.map(|table| table.slot(worker));
                if let Some(slot) = slot {
                    slot.begin_shard(shard);
                }
                let busy_clock = obs.recorder.enabled().then(std::time::Instant::now);
                let outcome = shard_fn(shard, &ShardCtx { slot });
                if let Some(started) = busy_clock {
                    obs.recorder.record_worker(worker, started.elapsed().as_nanos() as u64);
                }
                let partial = match outcome {
                    Ok(partial) => partial,
                    Err(e) => {
                        error.lock().expect("fleet error slot").get_or_insert(e);
                        failed.store(true, Ordering::Relaxed);
                        // Wake workers parked on the frontier so they
                        // observe the failure and exit. Taking the
                        // frontier lock first makes the store visible to
                        // any worker about to park, so the wakeup cannot
                        // be lost.
                        let _frontier = frontier.lock().expect("fleet frontier lock");
                        merged.notify_all();
                        break;
                    }
                };
                let mut f = frontier.lock().expect("fleet frontier lock");
                while shard != f.next
                    && f.pending.len() >= pending_cap
                    && !failed.load(Ordering::Relaxed)
                {
                    f = merged.wait(f).expect("fleet frontier lock");
                }
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                if f.push(shard, partial) {
                    merged.notify_all();
                }
            });
        }
    });

    if let Some(e) = error.into_inner().expect("fleet error slot") {
        return Err(e);
    }
    let frontier = frontier.into_inner().expect("fleet frontier lock");
    debug_assert!(frontier.pending.is_empty(), "all shards merged");
    Ok(frontier.total)
}

/// Simulates one synthetic shard serially, folding users in index order.
fn run_shard(
    scenario: &Scenario,
    shard: u64,
    ctx: &ShardCtx<'_>,
    recorder: &dyn Recorder,
) -> FleetReport {
    let users_simulated = recorder.counter("users_simulated");
    let days_counter = recorder.counter("user_days");
    let mut partial = empty_report(scenario);
    for index in scenario.shard_range(shard) {
        let (carrier, model) = scenario.user(index);
        let trace = {
            let _synthesize = span(recorder, "synthesize");
            model.generate()
        };
        {
            let _simulate = span(recorder, "simulate");
            fold_one(&mut partial, scenario.scheme, &carrier, &scenario.sim, &trace, model.days);
        }
        users_simulated.incr();
        days_counter.add(model.days as u64);
        ctx.user_done(model.days as u64);
        // `trace` drops here: generate-simulate-discard.
    }
    partial
}

/// Runs one user's trace through the scheme under test and the
/// status-quo baseline, folding both into `partial`.
fn fold_one(
    partial: &mut FleetReport,
    scheme: Scheme,
    carrier: &CarrierProfile,
    sim: &SimConfig,
    trace: &Trace,
    days: u32,
) {
    let baseline = Scheme::StatusQuo.run(carrier, sim, trace);
    let scheme_run = if scheme == Scheme::StatusQuo {
        baseline.clone()
    } else {
        scheme.run(carrier, sim, trace)
    };
    partial.fold_user(days, &scheme_run, &baseline);
}

/// Calendar days a trace spans, for user-day accounting of replayed
/// corpora (synthetic users carry their day count in the model).
/// Always at least 1: an empty or sub-day trace is one user-day.
pub(crate) fn days_spanned(trace: &Trace) -> u32 {
    (trace.span().as_secs_f64() / 86_400.0).ceil().clamp(1.0, u32::MAX as f64) as u32
}

fn empty_report(scenario: &Scenario) -> FleetReport {
    FleetReport::empty(scenario.name.clone(), scenario.scheme.label())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_radio::profile::CarrierProfile;

    fn tiny(users: u64) -> Scenario {
        let mut s = Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.shard_size = 4;
        s
    }

    #[test]
    fn more_threads_than_shards_is_fine() {
        let s = tiny(3);
        let r = run(&s, 64);
        assert_eq!(r.users, 3);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn zero_users_yields_empty_report() {
        let r = run(&tiny(0), 4);
        assert_eq!(r.users, 0);
        assert_eq!(r.energy_j, 0.0);
        assert_eq!(r.savings.count(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let s = tiny(2);
        assert_eq!(run(&s, 0), run(&s, 1));
    }

    #[test]
    fn status_quo_scenario_reports_zero_savings() {
        let mut s = tiny(4);
        s.scheme = Scheme::StatusQuo;
        let r = run(&s, 2);
        assert_eq!(r.users, 4);
        assert_eq!(r.energy_j.to_bits(), r.baseline_energy_j.to_bits());
        assert_eq!(r.aggregate_savings_pct(), 0.0);
        assert_eq!(r.switches, r.baseline_switches);
    }

    #[test]
    fn run_source_matches_run_for_synthetic_sources() {
        let s = tiny(5);
        let direct = run(&s, 2);
        let via_source = run_source(&UserSource::Synthetic(s), 2).unwrap();
        assert_eq!(direct, via_source);
        assert_eq!(via_source.source, "synthetic population");
    }

    #[test]
    fn corpus_runs_against_missing_directories_fail_not_hang() {
        // Errors must propagate out of the thread scope even at high
        // thread counts (the abort path wakes parked workers).
        let c = CorpusScenario::new(
            "/nonexistent/tailwise-runner",
            Scheme::MakeIdle,
            CarrierProfile::att_hspa(),
        );
        let err = run_corpus(&c, 8).unwrap_err();
        assert!(err.message.contains("cannot read corpus directory"), "{err}");
    }

    #[test]
    fn empty_carrier_mix_is_a_typed_error_not_a_worker_panic() {
        let dir =
            std::env::temp_dir().join(format!("tailwise-runner-nomix-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let t = tailwise_trace::Trace::from_sorted(vec![tailwise_trace::Packet::new(
            tailwise_trace::Instant::ZERO,
            tailwise_trace::Direction::Down,
            64,
        )])
        .unwrap();
        tailwise_trace::io::save(&t, &dir.join("user_0.twt")).unwrap();
        let mut c = CorpusScenario::new(&dir, Scheme::MakeIdle, CarrierProfile::att_hspa());
        c.carrier_mix.clear();
        let err = run_corpus(&c, 2).unwrap_err();
        assert!(err.message.contains("empty carrier mix"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_run_corrupt_traces_abort_with_the_file_name() {
        let dir =
            std::env::temp_dir().join(format!("tailwise-runner-corrupt-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Three good single-packet traces and one rotten file.
        for i in 0..3 {
            let t = tailwise_trace::Trace::from_sorted(vec![tailwise_trace::Packet::new(
                tailwise_trace::Instant::from_secs(i),
                tailwise_trace::Direction::Down,
                100,
            )])
            .unwrap();
            tailwise_trace::io::save(&t, &dir.join(format!("user_{i}.twt"))).unwrap();
        }
        std::fs::write(dir.join("user_1.twt"), b"rotten").unwrap();
        let mut c = CorpusScenario::new(&dir, Scheme::MakeIdle, CarrierProfile::att_hspa());
        c.shard_size = 1;
        let err = run_corpus(&c, 4).unwrap_err();
        assert!(err.message.contains("user_1.twt"), "{err}");
        assert_eq!(err.kind, tailwise_scenfile::ScenErrorKind::Run);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn days_spanned_rounds_up_and_floors_at_one() {
        use tailwise_trace::{Direction, Instant, Packet, Trace};
        let empty = Trace::new();
        assert_eq!(days_spanned(&empty), 1);
        let two_days = Trace::from_sorted(vec![
            Packet::new(Instant::ZERO, Direction::Up, 1),
            Packet::new(Instant::from_secs(86_400 + 60), Direction::Up, 1),
        ])
        .unwrap();
        assert_eq!(days_spanned(&two_days), 2);
    }
}
