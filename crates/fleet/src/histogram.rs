//! Fixed-bin streaming histograms for population-scale aggregates.
//!
//! Per-user metrics (savings percentages, per-user-day energy) must be
//! aggregated across hundreds of thousands of users without keeping a
//! per-user sample vector alive. A [`Histogram`] has a fixed range and
//! bin count chosen up front, so it costs O(bins) memory however many
//! samples stream through it, merges exactly (bin counts add), and its
//! percentile readout is reproducible bit for bit regardless of the
//! order samples arrived in — the property the fleet's thread-count
//! invariance test leans on.

/// A fixed-range, fixed-bin-count histogram over `f64` samples.
///
/// Samples outside `[lo, hi)` are clamped into the edge bins (and also
/// tracked exactly in `min`/`max`), so no sample is ever dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    count: u64,
    /// Exact running sum (for the mean; summed in insertion order).
    sum: f64,
    /// Smallest sample seen, unclamped.
    min: f64,
    /// Largest sample seen, unclamped.
    max: f64,
    /// NaN samples seen: counted here, excluded from every bin and
    /// statistic. (`NaN as usize` is 0, so folding them in would
    /// silently count each one as a bottom-edge value.)
    nan: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` equal-width bins.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            nan: 0,
        }
    }

    /// The standard savings-percentage histogram: 1-point bins across
    /// −100 %..+100 % (schemes can lose energy, hence the negative half).
    pub fn savings_percent() -> Histogram {
        Histogram::new(-100.0, 100.0, 200)
    }

    /// The standard MakeActive session-delay histogram: 0.1 s bins
    /// across 0..60 s. The paper's measured delays (Fig. 15, Table 3)
    /// sit well inside this range; longer delays clamp into the top bin
    /// (and stay exact in `max`).
    pub fn session_delay_seconds() -> Histogram {
        Histogram::new(0.0, 60.0, 600)
    }

    /// Width of one bin.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.bins.len() as f64
    }

    /// Records one sample. NaN samples land on [`Histogram::nan_count`]
    /// instead of a bin: every comparison against a NaN is false, so
    /// the cast-to-bin-index path would file them under bin 0 as if
    /// they were bottom-edge values (and poison `sum`/`min`/`max`).
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            self.nan += 1;
            return;
        }
        let idx = if x < self.lo {
            0
        } else {
            let raw = ((x - self.lo) / self.bin_width()) as usize;
            raw.min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded (excluding NaN samples).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Number of NaN samples seen (tracked separately, never binned).
    pub fn nan_count(&self) -> u64 {
        self.nan
    }

    /// Mean of all samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// The `q`-quantile (`0.0..=1.0`) as the center of the bin holding
    /// the nearest-rank sample (`None` when empty).
    ///
    /// Resolution is one bin width — the usual fixed-bin trade: exact
    /// percentile ranks, approximate percentile values.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank: the smallest bin whose cumulative count reaches
        // ceil(q * n), matching EmpiricalDist::quantile's convention.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.lo + (i as f64 + 0.5) * self.bin_width());
            }
        }
        Some(self.hi - 0.5 * self.bin_width())
    }

    /// Adds `other`'s counts into `self`. Panics if shapes differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits(), "histogram range mismatch");
        assert_eq!(self.hi.to_bits(), other.hi.to_bits(), "histogram range mismatch");
        assert_eq!(self.bins.len(), other.bins.len(), "histogram bin-count mismatch");
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.nan += other.nan;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_clamps_outliers() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-5.0);
        h.record(0.5);
        h.record(9.99);
        h.record(42.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bins()[0], 2); // -5 clamped down
        assert_eq!(h.bins()[9], 2); // 42 clamped up
        assert_eq!(h.min(), Some(-5.0));
        assert_eq!(h.max(), Some(42.0));
    }

    #[test]
    fn percentiles_hit_the_right_bins() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((p50 - 49.5).abs() < 1.0, "p50 {p50}");
        let p95 = h.percentile(0.95).unwrap();
        assert!((p95 - 94.5).abs() < 1.0, "p95 {p95}");
        assert_eq!(h.percentile(0.0).unwrap(), 0.5);
        assert_eq!(h.percentile(1.0).unwrap(), 99.5);
        assert_eq!(Histogram::savings_percent().percentile(0.5), None);
    }

    #[test]
    fn merge_equals_sequential_recording() {
        let mut all = Histogram::new(-10.0, 10.0, 40);
        let mut a = all.clone();
        let mut b = all.clone();
        for i in 0..100 {
            let x = (i as f64 * 0.37).sin() * 12.0;
            all.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(a.bins(), all.bins());
        assert_eq!(a.count(), all.count());
        assert_eq!(a.min(), all.min());
        assert_eq!(a.max(), all.max());
        assert_eq!(a.percentile(0.5), all.percentile(0.5));
    }

    #[test]
    fn nan_samples_never_reach_bin_zero_or_the_statistics() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(5.0);
        h.record(f64::NAN);
        h.record(f64::NAN);
        // NaN used to cast to bin index 0 and be counted as a
        // bottom-edge value; now it only moves the nan counter.
        assert_eq!(h.bins()[0], 0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.nan_count(), 2);
        assert_eq!(h.mean(), 5.0);
        assert_eq!(h.min(), Some(5.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.percentile(0.5), Some(5.5));

        let mut other = Histogram::new(0.0, 10.0, 10);
        other.record(f64::NAN);
        h.merge(&other);
        assert_eq!(h.nan_count(), 3);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn mean_tracks_sum() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for x in [0.25, 0.75] {
            h.record(x);
        }
        assert!((h.mean() - 0.5).abs() < 1e-12);
        assert_eq!(Histogram::new(0.0, 1.0, 4).mean(), 0.0);
    }
}
