//! Phase-1 request caching across sweep cells.
//!
//! An admission or scheme sweep re-runs the same population against a
//! different policy per cell, but the two-pass topology runner's phase 1
//! ([`Scheme::request_trace`](tailwise_core::schemes::Scheme::request_trace))
//! is a pure function of `(population, scheme)` — it never sees the
//! admission axis. A [`RequestCache`] exploits that: the first cell pays
//! the extraction pass and every later cell replays the stored request
//! streams, so an N-cell sweep costs one extraction plus N cheap
//! replays. The status-quo baseline each user is scored against is even
//! more reusable — it is scheme-independent — so the cache also keeps a
//! per-user `(energy, switches)` baseline summary keyed on the
//! population alone.
//!
//! ## Keys
//!
//! A [`Fingerprint`] is the scheme-independent identity of a synthetic
//! population: master seed, user count, days, a hash of the app/carrier
//! mixes, and a hash of the behavior-relevant engine knobs. Request
//! streams are keyed on `(Fingerprint, scheme token)` — the stream
//! depends on the scheme's idle policy — while baselines are keyed on
//! the `Fingerprint` alone. Anything the fingerprint excludes (the
//! admission axes, the cell/RNC topology, mobility, shard size, thread
//! count, observation knobs) provably cannot change phase-1 output,
//! which is exactly what makes sweep cells share entries. Mobility in
//! particular is excluded *by decision, not omission*: phase 1 extracts
//! each user's request stream from their traffic alone, before any cell
//! membership is consulted — movement changes where a request is
//! adjudicated, never whether it is made — so a mobility sweep shares
//! one extraction pass exactly like an admission sweep (pinned by the
//! golden fingerprint tests below).
//!
//! ## The replay memo
//!
//! Phase 1 is not the whole bill: the per-cell phase-2 replay alone is
//! ~47% of a run, and across sweep cells the vast majority of users
//! receive *bit-identical* grant/deny verdict streams — only users
//! near a loaded cell or RNC flip. The cache therefore also memoizes
//! each user's phase-2 outcome, keyed on
//! `(Fingerprint, scheme token, topology hash)` at the population
//! level and `(user index, verdict-stream hash)` per user. A memo hit
//! folds a stored [`ReplayOutcome`] (plus the user's sparse
//! `(cell, second) → msgs` load deltas) instead of materializing the
//! trace and re-running the engine; a sweep cell pays only for the
//! users whose verdicts changed. The `topo_hash` pins exactly the
//! facts the per-cell attribution depends on — cell count, mobility
//! model, signaling message weights — and deliberately excludes the
//! RNC shape and admission axes (verdicts already capture every
//! admission decision; RNC loads are derived from the cell maps at
//! fold time), which is what lets an admission sweep share one memo.
//! Counters: `replay_hits` / `replay_misses` per user (emitted only
//! when a cache is configured), `replay_spills` per `.twr` write, and
//! `replay_fallbacks` for untrusted files.
//!
//! ## Fallback contract
//!
//! The cache can be wrong about the disk but never about the answer: a
//! missing file is a miss, and a corrupt, truncated, or
//! mismatched-header `.twc` (or `.twr`) file is a *fallback* — counted
//! on the `cache_fallbacks` (resp. `replay_fallbacks`) counter,
//! recomputed from scratch, never trusted. The bit-identity harnesses
//! in `tests/cache_fleet.rs` and `tests/replay_fleet.rs` pin that a
//! cached, spilled, reloaded, or fallback run produces byte-identical
//! reports.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use tailwise_obs::Obs;
use tailwise_radio::profile::{CarrierProfile, RadioTech};
use tailwise_sim::ReplayOutcome;
use tailwise_trace::io::{
    read_replay_outcomes, read_request_streams, write_replay_outcomes, write_request_streams,
    ReplayCacheHeader, ReplayOutcomeRecord, RequestCacheHeader,
};
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Instant;

use crate::scenario::Scenario;
use crate::topology::NetworkTopology;

/// The scheme-independent identity of a synthetic population: everything
/// that feeds phase-1 request extraction *except* the scheme itself.
///
/// Two scenarios with equal fingerprints synthesize bit-identical users
/// and traces; the excluded fields (scheme, admission policies,
/// topology shape, mobility, shard size) affect only adjudication and
/// the fold, never the per-user request streams. Golden tests below pin
/// both directions: identity-field changes miss, policy-axis changes
/// hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Scenario master seed (roots the whole seeding hierarchy).
    pub master_seed: u64,
    /// Population size.
    pub users: u64,
    /// Days synthesized per user (after the runner's ≥ 1 clamp).
    pub days: u32,
    /// Hash over the app and carrier mixes, weights included.
    pub mix_hash: u64,
    /// Hash over the behavior-relevant engine knobs
    /// (`intra_burst_gap`, `window_capacity`; the record/limit knobs
    /// are observational and deliberately excluded).
    pub sim_hash: u64,
}

/// One hash folding step (SplitMix64 avalanche, the same primitive the
/// seeding hierarchy and the `.twc` checksum use).
fn fold(h: u64, word: u64) -> u64 {
    splitmix(h ^ word)
}

/// Folds a byte string unambiguously (length first, then bytes).
fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = fold(h, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    h
}

/// Folds every behavior-relevant field of a carrier profile. Weights
/// and numeric fields hash by exact bit pattern: a fingerprint must
/// never conflate two profiles that simulate differently, however
/// close their numbers.
fn fold_carrier(mut h: u64, carrier: &CarrierProfile) -> u64 {
    h = fold_bytes(h, carrier.name.as_bytes());
    h = fold(
        h,
        match carrier.tech {
            RadioTech::ThreeG => 3,
            RadioTech::Lte => 4,
        },
    );
    for value in [
        carrier.p_send,
        carrier.p_recv,
        carrier.p_dch,
        carrier.p_fach,
        carrier.e_promote,
        carrier.e_demote_base,
        carrier.fd_energy_fraction,
    ] {
        h = fold(h, value.to_bits());
    }
    for duration in [carrier.t1, carrier.t2, carrier.promotion_delay] {
        h = fold(h, duration.as_micros() as u64);
    }
    h
}

impl Fingerprint {
    /// Computes the fingerprint of a synthetic scenario.
    pub fn of(scenario: &Scenario) -> Fingerprint {
        let mut mix = 0xF1D0_0000_0000_0000u64;
        mix = fold(mix, scenario.app_mix.len() as u64);
        for (kind, weight) in &scenario.app_mix {
            mix = fold_bytes(mix, kind.token().as_bytes());
            mix = fold(mix, weight.to_bits());
        }
        mix = fold(mix, scenario.carrier_mix.len() as u64);
        for (carrier, weight) in &scenario.carrier_mix {
            mix = fold_carrier(mix, carrier);
            mix = fold(mix, weight.to_bits());
        }
        let mut sim = 0x51AB_0000_0000_0000u64;
        sim = fold(sim, scenario.sim.intra_burst_gap.as_micros() as u64);
        sim = fold(sim, scenario.sim.window_capacity as u64);
        Fingerprint {
            master_seed: scenario.master_seed,
            users: scenario.users,
            days: scenario.days_per_user.max(1),
            mix_hash: mix,
            sim_hash: sim,
        }
    }

    /// Collapses the fingerprint to one well-mixed word (the spill file
    /// name stem). Equal fingerprints always collapse equally; the
    /// golden tests pin concrete values so the on-disk naming cannot
    /// drift silently between releases.
    pub fn hash(&self) -> u64 {
        let mut h = 0x7A11_0000_0000_0000u64;
        h = fold(h, self.master_seed);
        h = fold(h, self.users);
        h = fold(h, self.days as u64);
        h = fold(h, self.mix_hash);
        h = fold(h, self.sim_hash);
        h
    }

    /// The `.twc` header announcing this fingerprint and scheme.
    fn header(&self, scheme: &str) -> RequestCacheHeader {
        RequestCacheHeader {
            master_seed: self.master_seed,
            users: self.users,
            days: self.days,
            mix_hash: self.mix_hash,
            sim_hash: self.sim_hash,
            scheme: scheme.to_string(),
        }
    }

    /// Whether a stored header announces exactly this fingerprint and
    /// scheme (anything else is a stale or foreign file → fallback).
    fn matches(&self, header: &RequestCacheHeader, scheme: &str) -> bool {
        header.master_seed == self.master_seed
            && header.users == self.users
            && header.days == self.days
            && header.mix_hash == self.mix_hash
            && header.sim_hash == self.sim_hash
            && header.scheme == scheme
    }
}

/// Hashes a user's grant/deny verdict stream to the per-user memo key:
/// length first, then the verdicts packed LSB-first into 64-bit words,
/// folded through the same SplitMix64 avalanche as every other key in
/// the cache. Equal streams always hash equally; a 64-bit accidental
/// collision is negligible against the population sizes swept here.
pub(crate) fn verdict_hash(verdicts: &[bool]) -> u64 {
    let mut h = 0x5C21_97ED_0000_0000u64;
    h = fold(h, verdicts.len() as u64);
    for chunk in verdicts.chunks(64) {
        let mut word = 0u64;
        for (bit, &granted) in chunk.iter().enumerate() {
            word |= (granted as u64) << bit;
        }
        h = fold(h, word);
    }
    h
}

/// Hashes the topology facts a memoized per-user `(cell, second) →
/// msgs` attribution depends on: the cell count (the assignment
/// modulus), the mobility model (which cell a mobile user occupies at
/// each instant), and the five per-transition signaling weights.
///
/// Deliberately excluded: the RNC count (cell→RNC grouping happens at
/// fold time, after the memo), the admission policies and budgets
/// (verdicts already capture every admission decision; budgets only
/// score the folded maps), and `per_handoff` (handoff messages are
/// charged at adjudication time every run, never memoized).
pub(crate) fn topo_hash(topology: &NetworkTopology) -> u64 {
    let mut h = 0x70B0_10CA_0000_0000u64;
    h = fold(h, topology.cells);
    h = fold_bytes(h, topology.mobility.to_string().as_bytes());
    let s = &topology.signaling;
    for weight in [
        s.per_promotion,
        s.per_fach_promotion,
        s.per_t1_demotion,
        s.per_timer_demotion,
        s.per_fd_demotion,
    ] {
        h = fold(h, weight as u64);
    }
    h
}

/// One memoized per-user phase-2 outcome: the foldable scalar outcome,
/// the status-quo baseline summary (embedded so a warm `.twr`-only
/// process can fold without re-running the baseline), and the user's
/// sparse per-second signaling-load deltas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ReplayEntry {
    /// The scheme run's foldable outcome.
    pub(crate) outcome: ReplayOutcome,
    /// Status-quo baseline energy, as `f64::to_bits`.
    pub(crate) baseline_energy_bits: u64,
    /// Status-quo baseline switch cycles.
    pub(crate) baseline_switches: u64,
    /// `(cell, second, msgs)` load deltas, grouped and sorted.
    pub(crate) seconds: Vec<(u64, i64, u64)>,
}

/// Per-user phase-1 request streams, index-ordered (`streams[i]` is
/// user `i`'s non-decreasing request times).
type Streams = Arc<Vec<Vec<Instant>>>;
/// Per-user baseline summaries, index-ordered: `(energy bits, switch
/// cycles)` of the status-quo run. Energy travels as `f64::to_bits` so
/// the entry is `Eq`-comparable and round-trips exactly.
type Baselines = Arc<Vec<(u64, u64)>>;
/// Memoized replay outcomes for one `(fingerprint, scheme, topology)`
/// population, keyed by `(user index, verdict hash)`.
pub(crate) type Outcomes = Arc<HashMap<(u64, u64), ReplayEntry>>;

/// A phase-1 request (and baseline) cache shared across fleet runs.
///
/// Always holds an in-memory map; optionally spills request streams to
/// a directory of `.twc` files so later *processes* can warm-start too
/// (the CLI's `--cache <dir>`). All methods take `&self` and are
/// thread-safe; clones of the stored `Arc`s are handed out, so a hit
/// never copies the streams.
#[derive(Debug, Default)]
pub struct RequestCache {
    dir: Option<PathBuf>,
    streams: Mutex<HashMap<(Fingerprint, String), Streams>>,
    baselines: Mutex<HashMap<Fingerprint, Baselines>>,
    outcomes: Mutex<HashMap<(Fingerprint, String, u64), Outcomes>>,
}

impl RequestCache {
    /// A purely in-memory cache (the default for sweeps: first cell
    /// extracts, later cells replay, nothing persists).
    pub fn in_memory() -> RequestCache {
        RequestCache::default()
    }

    /// A cache that additionally spills request streams to `dir` as
    /// `.twc` files and warm-starts from files already there. Creates
    /// the directory if needed.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<RequestCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RequestCache { dir: Some(dir), ..RequestCache::default() })
    }

    /// The spill directory, when this cache has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The spill file a `(fingerprint, scheme)` entry lives in (scheme
    /// tokens are filename-safe by construction).
    fn path_for(&self, fingerprint: &Fingerprint, scheme: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| dir.join(format!("{:016x}-{scheme}.twc", fingerprint.hash())))
    }

    /// Looks up the request streams for `(fingerprint, scheme)`:
    /// memory first, then the spill directory. Counts exactly one of
    /// `cache_hits` / `cache_misses` per call, plus `cache_fallbacks`
    /// when an on-disk file existed but could not be trusted (corrupt,
    /// truncated, or announcing a different fingerprint) — the caller
    /// then recomputes, so a rotten file can cost time but never
    /// correctness.
    pub(crate) fn lookup(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        obs: Obs<'_>,
    ) -> Option<Streams> {
        let key = (*fingerprint, scheme.to_string());
        if let Some(hit) = self.streams.lock().expect("request cache map").get(&key) {
            obs.recorder.counter("cache_hits").incr();
            return Some(Arc::clone(hit));
        }
        if let Some(path) = self.path_for(fingerprint, scheme) {
            match std::fs::File::open(&path) {
                Ok(file) => match read_request_streams(std::io::BufReader::new(file)) {
                    Ok((header, streams)) if fingerprint.matches(&header, scheme) => {
                        let streams = Arc::new(streams);
                        self.streams
                            .lock()
                            .expect("request cache map")
                            .insert(key, Arc::clone(&streams));
                        obs.recorder.counter("cache_hits").incr();
                        return Some(streams);
                    }
                    // Readable but announcing some other population
                    // (hash-stem collision or a renamed file), or not
                    // readable at all: both are fallbacks.
                    Ok(_) | Err(_) => {
                        obs.recorder.counter("cache_fallbacks").incr();
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    obs.recorder.counter("cache_fallbacks").incr();
                }
            }
        }
        obs.recorder.counter("cache_misses").incr();
        None
    }

    /// Stores freshly extracted request streams, spilling to disk when
    /// a directory is configured. Spill failures count on
    /// `cache_fallbacks` and are otherwise swallowed — a read-only or
    /// full disk degrades the cache, never the run.
    pub(crate) fn store(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        streams: Streams,
        obs: Obs<'_>,
    ) {
        debug_assert_eq!(
            streams.len() as u64,
            fingerprint.users,
            "stream count must match the fingerprint's population"
        );
        self.streams
            .lock()
            .expect("request cache map")
            .insert((*fingerprint, scheme.to_string()), Arc::clone(&streams));
        let Some(path) = self.path_for(fingerprint, scheme) else { return };
        // Write-then-rename so a concurrent reader (or a crash) can
        // only ever observe a complete file — and even a torn rename
        // is caught by the reader's checksum. The tmp name carries a
        // process-wide sequence number on top of the pid: two threads
        // in one process storing the same key must not interleave
        // writes into a shared tmp file.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("twc.tmp{}-{seq}", std::process::id()));
        let spilled = std::fs::File::create(&tmp)
            .map_err(|e| e.to_string())
            .and_then(|file| {
                write_request_streams(&fingerprint.header(scheme), &streams, file)
                    .map_err(|e| e.to_string())
            })
            .and_then(|()| std::fs::rename(&tmp, &path).map_err(|e| e.to_string()));
        match spilled {
            Ok(()) => obs.recorder.counter("cache_spills").incr(),
            Err(_) => {
                std::fs::remove_file(&tmp).ok();
                obs.recorder.counter("cache_fallbacks").incr();
            }
        }
    }

    /// Looks up the per-user baseline summaries for a population
    /// (in-memory only — baselines are cheap to hold and recompute
    /// compared to spilling them).
    pub(crate) fn lookup_baselines(&self, fingerprint: &Fingerprint) -> Option<Baselines> {
        self.baselines.lock().expect("baseline cache map").get(fingerprint).map(Arc::clone)
    }

    /// Stores per-user baseline summaries for a population.
    pub(crate) fn store_baselines(&self, fingerprint: &Fingerprint, baselines: Baselines) {
        self.baselines.lock().expect("baseline cache map").insert(*fingerprint, baselines);
    }

    /// The `.twr` spill file a `(fingerprint, scheme, topology)` memo
    /// lives in.
    fn outcome_path_for(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        topo_hash: u64,
    ) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| {
            dir.join(format!("{:016x}-{scheme}-{topo_hash:016x}.twr", fingerprint.hash()))
        })
    }

    /// The `.twr` header announcing a fingerprint, scheme, and
    /// topology hash.
    fn outcome_header(
        fingerprint: &Fingerprint,
        scheme: &str,
        topo_hash: u64,
    ) -> ReplayCacheHeader {
        ReplayCacheHeader {
            master_seed: fingerprint.master_seed,
            users: fingerprint.users,
            days: fingerprint.days,
            mix_hash: fingerprint.mix_hash,
            sim_hash: fingerprint.sim_hash,
            topo_hash,
            scheme: scheme.to_string(),
        }
    }

    /// Looks up the memoized replay outcomes for a population: memory
    /// first, then the spill directory. Always returns a map (possibly
    /// empty) — per-user hit/miss accounting happens at the replay
    /// loop, where the verdict hashes are known. An on-disk file that
    /// cannot be trusted (corrupt, truncated, announcing a different
    /// population) counts one `replay_fallbacks` and is ignored; the
    /// run recomputes and later overwrites it with a repaired spill.
    pub(crate) fn lookup_outcomes(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        topo_hash: u64,
        obs: Obs<'_>,
    ) -> Outcomes {
        let key = (*fingerprint, scheme.to_string(), topo_hash);
        if let Some(hit) = self.outcomes.lock().expect("replay memo map").get(&key) {
            return Arc::clone(hit);
        }
        if let Some(path) = self.outcome_path_for(fingerprint, scheme, topo_hash) {
            match std::fs::File::open(&path) {
                Ok(file) => match read_replay_outcomes(std::io::BufReader::new(file)) {
                    Ok((header, records))
                        if Self::outcome_header(fingerprint, scheme, topo_hash) == header
                            && records.iter().all(|r| r.user < fingerprint.users) =>
                    {
                        let map: HashMap<(u64, u64), ReplayEntry> = records
                            .into_iter()
                            .map(|r| {
                                (
                                    (r.user, r.verdict_hash),
                                    ReplayEntry {
                                        outcome: ReplayOutcome {
                                            packets: r.packets,
                                            energy_bits: r.energy_bits,
                                            switches: r.switches,
                                            false_switches: r.false_switches,
                                            missed_switches: r.missed_switches,
                                            decisions: r.decisions,
                                            delay_bits: r.delay_bits,
                                        },
                                        baseline_energy_bits: r.baseline_energy_bits,
                                        baseline_switches: r.baseline_switches,
                                        seconds: r.seconds,
                                    },
                                )
                            })
                            .collect();
                        let outcomes: Outcomes = Arc::new(map);
                        self.outcomes
                            .lock()
                            .expect("replay memo map")
                            .insert(key, Arc::clone(&outcomes));
                        return outcomes;
                    }
                    Ok(_) | Err(_) => {
                        obs.recorder.counter("replay_fallbacks").incr();
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    obs.recorder.counter("replay_fallbacks").incr();
                }
            }
        }
        Arc::new(HashMap::new())
    }

    /// Merges freshly computed replay outcomes into the memo and spills
    /// the merged map to `.twr` when a directory is configured. A warm
    /// run with nothing fresh is a no-op — existing spill files are
    /// left untouched, byte for byte. Spill failures count on
    /// `replay_fallbacks` and are otherwise swallowed, exactly like
    /// [`store`](Self::store).
    pub(crate) fn store_outcomes(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        topo_hash: u64,
        fresh: Vec<((u64, u64), ReplayEntry)>,
        obs: Obs<'_>,
    ) {
        if fresh.is_empty() {
            return;
        }
        let key = (*fingerprint, scheme.to_string(), topo_hash);
        let merged: Outcomes = {
            let mut map = self.outcomes.lock().expect("replay memo map");
            let slot = map.entry(key).or_default();
            let mut merged = (**slot).clone();
            merged.extend(fresh);
            let merged = Arc::new(merged);
            *slot = Arc::clone(&merged);
            merged
        };
        let Some(path) = self.outcome_path_for(fingerprint, scheme, topo_hash) else { return };
        // Spill deterministically (records sorted by key) via the same
        // write-then-rename discipline as the `.twc` spill: a torn or
        // concurrent write can only ever surface as a checksum fallback.
        let mut records: Vec<ReplayOutcomeRecord> = merged
            .iter()
            .map(|(&(user, verdict_hash), entry)| ReplayOutcomeRecord {
                user,
                verdict_hash,
                packets: entry.outcome.packets,
                energy_bits: entry.outcome.energy_bits,
                switches: entry.outcome.switches,
                false_switches: entry.outcome.false_switches,
                missed_switches: entry.outcome.missed_switches,
                decisions: entry.outcome.decisions,
                baseline_energy_bits: entry.baseline_energy_bits,
                baseline_switches: entry.baseline_switches,
                delay_bits: entry.outcome.delay_bits.clone(),
                seconds: entry.seconds.clone(),
            })
            .collect();
        records.sort_unstable_by_key(|r| (r.user, r.verdict_hash));
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("twr.tmp{}-{seq}", std::process::id()));
        let header = Self::outcome_header(fingerprint, scheme, topo_hash);
        let spilled = std::fs::File::create(&tmp)
            .map_err(|e| e.to_string())
            .and_then(|file| {
                write_replay_outcomes(&header, &records, file).map_err(|e| e.to_string())
            })
            .and_then(|()| std::fs::rename(&tmp, &path).map_err(|e| e.to_string()));
        match spilled {
            Ok(()) => obs.recorder.counter("replay_spills").incr(),
            Err(_) => {
                std::fs::remove_file(&tmp).ok();
                obs.recorder.counter("replay_fallbacks").incr();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_core::schemes::Scheme;
    use tailwise_obs::{Obs, Recorder as _};
    use tailwise_workload::apps::AppKind;

    /// The `rnc_storm.toml` population in miniature — the golden
    /// fingerprint subject.
    fn storm_like() -> Scenario {
        let mut s = Scenario::new(600, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.master_seed = 2012;
        s.shard_size = 32;
        s.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Email, 2.0)];
        s.cells = Some(crate::topology::NetworkTopology::with_rncs(3, 12));
        s
    }

    #[test]
    fn identity_changes_miss_and_policy_changes_hit() {
        let base = Fingerprint::of(&storm_like());

        // Identity fields: each change must invalidate.
        let mut reseeded = storm_like();
        reseeded.master_seed = 2013;
        assert_ne!(Fingerprint::of(&reseeded), base, "master seed must invalidate");

        let mut resized = storm_like();
        resized.users = 601;
        assert_ne!(Fingerprint::of(&resized), base, "user count must invalidate");

        let mut remixed = storm_like();
        remixed.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Email, 2.5)];
        assert_ne!(Fingerprint::of(&remixed), base, "app mix must invalidate");

        let mut recarriered = storm_like();
        recarriered.carrier_mix = vec![(CarrierProfile::att_hspa(), 1.0)];
        assert_ne!(Fingerprint::of(&recarriered), base, "carrier mix must invalidate");

        let mut longer = storm_like();
        longer.days_per_user = 2;
        assert_ne!(Fingerprint::of(&longer), base, "day count must invalidate");

        // Policy axes: sweeping them must NOT invalidate — that reuse
        // is the whole point of the cache.
        let mut reschemed = storm_like();
        reschemed.scheme = Scheme::FixedTail45;
        assert_eq!(Fingerprint::of(&reschemed), base, "scheme axis must not invalidate");

        let mut readmitted = storm_like();
        readmitted.cells.as_mut().unwrap().rnc_admission =
            crate::admission::AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 };
        assert_eq!(Fingerprint::of(&readmitted), base, "admission axis must not invalidate");

        let mut resharded = storm_like();
        resharded.shard_size = 64;
        assert_eq!(Fingerprint::of(&resharded), base, "shard size must not invalidate");

        // Mobility is a topology axis: it moves requests between cells
        // but never changes which requests exist, so a mobility sweep
        // must share the static run's extraction pass.
        let mut commuted = storm_like();
        commuted.cells.as_mut().unwrap().mobility = crate::mobility::MobilitySpec::commute();
        assert_eq!(Fingerprint::of(&commuted), base, "mobility axis must not invalidate");
    }

    #[test]
    fn golden_fingerprint_hash_values_are_pinned() {
        // Pinned literals: the on-disk `.twc` naming contract. If a
        // deliberate hashing change lands, re-pin these — silently
        // drifting values would orphan every existing spill directory.
        assert_eq!(Fingerprint::of(&storm_like()).hash(), 0x7defa3bb02aa2399);
        let mut reseeded = storm_like();
        reseeded.master_seed = 1;
        assert_eq!(Fingerprint::of(&reseeded).hash(), 0x66c706f38c02825a);
    }

    #[test]
    fn day_clamp_is_fingerprint_visible() {
        // days_per_user 0 and 1 synthesize the same population (the
        // runner clamps to ≥ 1), so they must share a fingerprint.
        let mut zero = storm_like();
        zero.days_per_user = 0;
        assert_eq!(Fingerprint::of(&zero), Fingerprint::of(&storm_like()));
    }

    #[test]
    fn memory_cache_round_trips_and_counts() {
        let cache = RequestCache::in_memory();
        let mut tiny = storm_like();
        tiny.users = 3;
        let fp = Fingerprint::of(&tiny);
        let obs = Obs::none();
        assert!(cache.lookup(&fp, "makeidle", obs).is_none());
        let streams: Streams =
            Arc::new(vec![vec![Instant::from_secs(1)], vec![], vec![Instant::from_secs(2)]]);
        cache.store(&fp, "makeidle", Arc::clone(&streams), obs);
        assert_eq!(cache.lookup(&fp, "makeidle", obs).as_deref(), Some(&*streams));
        // A different scheme is a different entry.
        assert!(cache.lookup(&fp, "tail45", obs).is_none());
        // Baselines key on the fingerprint alone.
        assert!(cache.lookup_baselines(&fp).is_none());
        let baselines: Baselines = Arc::new(vec![(1, 2), (3, 4), (5, 6)]);
        cache.store_baselines(&fp, Arc::clone(&baselines));
        assert_eq!(cache.lookup_baselines(&fp).as_deref(), Some(&*baselines));
    }

    #[test]
    fn disk_cache_spills_and_warm_starts() {
        let dir = std::env::temp_dir().join(format!("tailwise-cache-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // The spill header claims the fingerprint's user count, so the
        // stream vector must match it — two users here.
        let mut tiny = storm_like();
        tiny.users = 2;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::ZERO, Instant::from_secs(3)], vec![]]);

        let writer = RequestCache::with_dir(&dir).unwrap();
        writer.store(&fp, "makeidle", Arc::clone(&streams), Obs::none());
        let spilled = dir.join(format!("{:016x}-makeidle.twc", fp.hash()));
        assert!(spilled.is_file(), "missing spill file {}", spilled.display());

        // A fresh cache (fresh process, conceptually) warm-starts from
        // the spill file alone.
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, "makeidle", Obs::none()).as_deref(), Some(&*streams));

        // Corrupt the file: a third cache must fall back cleanly.
        let mut bytes = std::fs::read(&spilled).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&spilled, &bytes).unwrap();
        let fallback = RequestCache::with_dir(&dir).unwrap();
        assert!(fallback.lookup(&fp, "makeidle", Obs::none()).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_stores_of_one_key_never_corrupt_the_spill() {
        // Regression: the spill tmp filename used to be pid-only, so
        // two threads in one process storing the same (fingerprint,
        // scheme) interleaved writes into a single tmp file — a corrupt
        // spill surfacing later as silent cache_fallbacks.
        let dir = std::env::temp_dir().join(format!("tailwise-cache-race-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 2;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::ZERO, Instant::from_secs(7)], vec![]]);

        let recorder = tailwise_obs::StatsRecorder::new();
        for _round in 0..4 {
            let writer = RequestCache::with_dir(&dir).unwrap();
            std::thread::scope(|scope| {
                for _thread in 0..8 {
                    let writer = &writer;
                    let fp = &fp;
                    let streams = Arc::clone(&streams);
                    let recorder = &recorder;
                    scope.spawn(move || {
                        let obs = Obs { recorder, progress: None };
                        writer.store(fp, "makeidle", streams, obs);
                    });
                }
            });
        }

        // Every store spilled cleanly: no interleaved tmp writes, no
        // swallowed spill failures, no stray tmp litter.
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("cache_fallbacks"), 0, "some store fell back");
        assert_eq!(snapshot.counter("cache_spills"), 32, "every store must spill");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().into_string().unwrap())
            .filter(|name| !name.ends_with(".twc"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");

        // A fresh cache (conceptually a fresh process) warm-reads the
        // final file with a hit and zero fallbacks.
        let read_recorder = tailwise_obs::StatsRecorder::new();
        let read_obs = Obs { recorder: &read_recorder, progress: None };
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, "makeidle", read_obs).as_deref(), Some(&*streams));
        let read_snapshot = read_recorder.snapshot();
        assert_eq!(read_snapshot.counter("cache_hits"), 1);
        assert_eq!(read_snapshot.counter("cache_fallbacks"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    fn sample_entry(energy: f64, seconds: Vec<(u64, i64, u64)>) -> ReplayEntry {
        ReplayEntry {
            outcome: ReplayOutcome {
                packets: 100,
                energy_bits: energy.to_bits(),
                switches: 5,
                false_switches: 1,
                missed_switches: 2,
                decisions: 20,
                delay_bits: vec![0.25f64.to_bits()],
            },
            baseline_energy_bits: (energy * 2.0).to_bits(),
            baseline_switches: 3,
            seconds,
        }
    }

    #[test]
    fn verdict_hash_separates_streams_and_packs_beyond_one_word() {
        assert_eq!(verdict_hash(&[]), verdict_hash(&[]));
        assert_ne!(verdict_hash(&[]), verdict_hash(&[true]));
        assert_ne!(verdict_hash(&[true]), verdict_hash(&[false]));
        assert_ne!(verdict_hash(&[true, false]), verdict_hash(&[false, true]));
        // Length is folded first: a trailing deny is not a no-op.
        assert_ne!(verdict_hash(&[true]), verdict_hash(&[true, false]));
        // Streams longer than one packing word stay order-sensitive.
        let mut long = vec![true; 130];
        let base = verdict_hash(&long);
        long[129] = false;
        assert_ne!(verdict_hash(&long), base);
        long[129] = true;
        assert_eq!(verdict_hash(&long), base);
    }

    #[test]
    fn topo_hash_pins_attribution_facts_and_ignores_admission_axes() {
        let base = crate::topology::NetworkTopology::with_rncs(3, 12);
        let h = topo_hash(&base);

        // The facts the per-user (cell, second) attribution depends on
        // must invalidate…
        let mut recelled = crate::topology::NetworkTopology::with_rncs(3, 13);
        recelled.rncs = 3;
        assert_ne!(topo_hash(&recelled), h, "cell count must invalidate");
        let mut moved = base.clone();
        moved.mobility = crate::mobility::MobilitySpec::commute();
        assert_ne!(topo_hash(&moved), h, "mobility must invalidate");
        let mut reweighted = base.clone();
        reweighted.signaling.per_promotion += 1;
        assert_ne!(topo_hash(&reweighted), h, "signaling weights must invalidate");

        // …while the axes an admission sweep moves must not: that reuse
        // is the whole point of the memo.
        let mut readmitted = base.clone();
        readmitted.rnc_admission =
            crate::admission::AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 };
        assert_eq!(topo_hash(&readmitted), h, "admission axis must not invalidate");
        let mut regrouped = base.clone();
        regrouped.rncs = 4;
        assert_eq!(topo_hash(&regrouped), h, "RNC grouping must not invalidate");
        let mut rebudgeted = base.clone();
        rebudgeted.cell_budget = tailwise_radio::SignalingBudget::per_second(7);
        assert_eq!(topo_hash(&rebudgeted), h, "budgets must not invalidate");
        let mut rehandoffed = base.clone();
        rehandoffed.signaling.per_handoff += 1;
        assert_eq!(topo_hash(&rehandoffed), h, "per_handoff is charged at adjudication");
    }

    #[test]
    fn replay_memo_round_trips_in_memory_and_on_disk() {
        let dir = std::env::temp_dir().join(format!("tailwise-memo-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 2;
        let fp = Fingerprint::of(&tiny);
        let topo = topo_hash(tiny.cells.as_ref().unwrap());
        let obs = Obs::none();

        let cache = RequestCache::with_dir(&dir).unwrap();
        assert!(cache.lookup_outcomes(&fp, "makeidle", topo, obs).is_empty());
        // Storing nothing fresh must not create a spill file.
        cache.store_outcomes(&fp, "makeidle", topo, Vec::new(), obs);
        let spill = dir.join(format!("{:016x}-makeidle-{topo:016x}.twr", fp.hash()));
        assert!(!spill.exists(), "empty store must not spill");

        let fresh = vec![
            ((0u64, 11u64), sample_entry(10.0, vec![(0, 5, 28), (1, 9, 3)])),
            ((1u64, 22u64), sample_entry(20.0, vec![])),
        ];
        cache.store_outcomes(&fp, "makeidle", topo, fresh.clone(), obs);
        assert!(spill.is_file(), "missing spill file {}", spill.display());
        let served = cache.lookup_outcomes(&fp, "makeidle", topo, obs);
        assert_eq!(served.len(), 2);
        assert_eq!(served.get(&(0, 11)), Some(&fresh[0].1));

        // A fresh cache (fresh process, conceptually) warm-starts from
        // the `.twr` file alone; a later merge keeps prior entries.
        let warm = RequestCache::with_dir(&dir).unwrap();
        let served = warm.lookup_outcomes(&fp, "makeidle", topo, obs);
        assert_eq!(served.len(), 2);
        assert_eq!(served.get(&(1, 22)), Some(&fresh[1].1));
        warm.store_outcomes(
            &fp,
            "makeidle",
            topo,
            vec![((1u64, 33u64), sample_entry(30.0, vec![(0, 1, 1)]))],
            obs,
        );
        let served = warm.lookup_outcomes(&fp, "makeidle", topo, obs);
        assert_eq!(served.len(), 3, "merge must keep prior entries");

        // A different topology hash is a different memo entirely.
        assert!(warm.lookup_outcomes(&fp, "makeidle", topo ^ 1, obs).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_replay_spills_fall_back_and_count() {
        let dir = std::env::temp_dir().join(format!("tailwise-memo-bad-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 1;
        let fp = Fingerprint::of(&tiny);
        let topo = topo_hash(tiny.cells.as_ref().unwrap());
        let seeder = RequestCache::with_dir(&dir).unwrap();
        seeder.store_outcomes(
            &fp,
            "makeidle",
            topo,
            vec![((0u64, 7u64), sample_entry(1.5, vec![(0, 0, 4)]))],
            Obs::none(),
        );
        let spill = dir.join(format!("{:016x}-makeidle-{topo:016x}.twr", fp.hash()));
        let pristine = std::fs::read(&spill).unwrap();
        std::fs::write(&spill, &pristine[..pristine.len() - 3]).unwrap();

        let recorder = tailwise_obs::StatsRecorder::new();
        let obs = Obs { recorder: &recorder, progress: None };
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert!(reader.lookup_outcomes(&fp, "makeidle", topo, obs).is_empty());
        assert_eq!(recorder.snapshot().counter("replay_fallbacks"), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fractional_iat_scheme_token_survives_the_spill_filename() {
        // `iat92.5` round-trips Display → FromStr …
        let scheme = Scheme::PercentileIat(0.925);
        let token = scheme.to_string();
        assert_eq!(token, "iat92.5");
        assert_eq!(token.parse::<Scheme>().unwrap(), scheme);

        // … and the dot inside the token survives path_for → warm
        // lookup (with_extension-style suffix surgery on the tmp file
        // must not eat the token's fractional part).
        let dir = std::env::temp_dir().join(format!("tailwise-cache-frac-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 1;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::from_secs(11)]]);
        let writer = RequestCache::with_dir(&dir).unwrap();
        writer.store(&fp, &token, Arc::clone(&streams), Obs::none());
        let spilled = dir.join(format!("{:016x}-iat92.5.twc", fp.hash()));
        assert!(spilled.is_file(), "missing spill file {}", spilled.display());

        let read_recorder = tailwise_obs::StatsRecorder::new();
        let read_obs = Obs { recorder: &read_recorder, progress: None };
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, &token, read_obs).as_deref(), Some(&*streams));
        assert_eq!(read_recorder.snapshot().counter("cache_hits"), 1);
        assert_eq!(read_recorder.snapshot().counter("cache_fallbacks"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
