//! Phase-1 request caching across sweep cells.
//!
//! An admission or scheme sweep re-runs the same population against a
//! different policy per cell, but the two-pass topology runner's phase 1
//! ([`Scheme::request_trace`](tailwise_core::schemes::Scheme::request_trace))
//! is a pure function of `(population, scheme)` — it never sees the
//! admission axis. A [`RequestCache`] exploits that: the first cell pays
//! the extraction pass and every later cell replays the stored request
//! streams, so an N-cell sweep costs one extraction plus N cheap
//! replays. The status-quo baseline each user is scored against is even
//! more reusable — it is scheme-independent — so the cache also keeps a
//! per-user `(energy, switches)` baseline summary keyed on the
//! population alone.
//!
//! ## Keys
//!
//! A [`Fingerprint`] is the scheme-independent identity of a synthetic
//! population: master seed, user count, days, a hash of the app/carrier
//! mixes, and a hash of the behavior-relevant engine knobs. Request
//! streams are keyed on `(Fingerprint, scheme token)` — the stream
//! depends on the scheme's idle policy — while baselines are keyed on
//! the `Fingerprint` alone. Anything the fingerprint excludes (the
//! admission axes, the cell/RNC topology, mobility, shard size, thread
//! count, observation knobs) provably cannot change phase-1 output,
//! which is exactly what makes sweep cells share entries. Mobility in
//! particular is excluded *by decision, not omission*: phase 1 extracts
//! each user's request stream from their traffic alone, before any cell
//! membership is consulted — movement changes where a request is
//! adjudicated, never whether it is made — so a mobility sweep shares
//! one extraction pass exactly like an admission sweep (pinned by the
//! golden fingerprint tests below).
//!
//! ## Fallback contract
//!
//! The cache can be wrong about the disk but never about the answer: a
//! missing file is a miss, and a corrupt, truncated, or
//! mismatched-header `.twc` file is a *fallback* — counted on the
//! `cache_fallbacks` counter, recomputed from scratch, never trusted.
//! The bit-identity harness in `tests/cache_fleet.rs` pins that a
//! cached, spilled, reloaded, or fallback run produces byte-identical
//! reports.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use tailwise_obs::Obs;
use tailwise_radio::profile::{CarrierProfile, RadioTech};
use tailwise_trace::io::{read_request_streams, write_request_streams, RequestCacheHeader};
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Instant;

use crate::scenario::Scenario;

/// The scheme-independent identity of a synthetic population: everything
/// that feeds phase-1 request extraction *except* the scheme itself.
///
/// Two scenarios with equal fingerprints synthesize bit-identical users
/// and traces; the excluded fields (scheme, admission policies,
/// topology shape, mobility, shard size) affect only adjudication and
/// the fold, never the per-user request streams. Golden tests below pin
/// both directions: identity-field changes miss, policy-axis changes
/// hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    /// Scenario master seed (roots the whole seeding hierarchy).
    pub master_seed: u64,
    /// Population size.
    pub users: u64,
    /// Days synthesized per user (after the runner's ≥ 1 clamp).
    pub days: u32,
    /// Hash over the app and carrier mixes, weights included.
    pub mix_hash: u64,
    /// Hash over the behavior-relevant engine knobs
    /// (`intra_burst_gap`, `window_capacity`; the record/limit knobs
    /// are observational and deliberately excluded).
    pub sim_hash: u64,
}

/// One hash folding step (SplitMix64 avalanche, the same primitive the
/// seeding hierarchy and the `.twc` checksum use).
fn fold(h: u64, word: u64) -> u64 {
    splitmix(h ^ word)
}

/// Folds a byte string unambiguously (length first, then bytes).
fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    h = fold(h, bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        h = fold(h, u64::from_le_bytes(word));
    }
    h
}

/// Folds every behavior-relevant field of a carrier profile. Weights
/// and numeric fields hash by exact bit pattern: a fingerprint must
/// never conflate two profiles that simulate differently, however
/// close their numbers.
fn fold_carrier(mut h: u64, carrier: &CarrierProfile) -> u64 {
    h = fold_bytes(h, carrier.name.as_bytes());
    h = fold(
        h,
        match carrier.tech {
            RadioTech::ThreeG => 3,
            RadioTech::Lte => 4,
        },
    );
    for value in [
        carrier.p_send,
        carrier.p_recv,
        carrier.p_dch,
        carrier.p_fach,
        carrier.e_promote,
        carrier.e_demote_base,
        carrier.fd_energy_fraction,
    ] {
        h = fold(h, value.to_bits());
    }
    for duration in [carrier.t1, carrier.t2, carrier.promotion_delay] {
        h = fold(h, duration.as_micros() as u64);
    }
    h
}

impl Fingerprint {
    /// Computes the fingerprint of a synthetic scenario.
    pub fn of(scenario: &Scenario) -> Fingerprint {
        let mut mix = 0xF1D0_0000_0000_0000u64;
        mix = fold(mix, scenario.app_mix.len() as u64);
        for (kind, weight) in &scenario.app_mix {
            mix = fold_bytes(mix, kind.token().as_bytes());
            mix = fold(mix, weight.to_bits());
        }
        mix = fold(mix, scenario.carrier_mix.len() as u64);
        for (carrier, weight) in &scenario.carrier_mix {
            mix = fold_carrier(mix, carrier);
            mix = fold(mix, weight.to_bits());
        }
        let mut sim = 0x51AB_0000_0000_0000u64;
        sim = fold(sim, scenario.sim.intra_burst_gap.as_micros() as u64);
        sim = fold(sim, scenario.sim.window_capacity as u64);
        Fingerprint {
            master_seed: scenario.master_seed,
            users: scenario.users,
            days: scenario.days_per_user.max(1),
            mix_hash: mix,
            sim_hash: sim,
        }
    }

    /// Collapses the fingerprint to one well-mixed word (the spill file
    /// name stem). Equal fingerprints always collapse equally; the
    /// golden tests pin concrete values so the on-disk naming cannot
    /// drift silently between releases.
    pub fn hash(&self) -> u64 {
        let mut h = 0x7A11_0000_0000_0000u64;
        h = fold(h, self.master_seed);
        h = fold(h, self.users);
        h = fold(h, self.days as u64);
        h = fold(h, self.mix_hash);
        h = fold(h, self.sim_hash);
        h
    }

    /// The `.twc` header announcing this fingerprint and scheme.
    fn header(&self, scheme: &str) -> RequestCacheHeader {
        RequestCacheHeader {
            master_seed: self.master_seed,
            users: self.users,
            days: self.days,
            mix_hash: self.mix_hash,
            sim_hash: self.sim_hash,
            scheme: scheme.to_string(),
        }
    }

    /// Whether a stored header announces exactly this fingerprint and
    /// scheme (anything else is a stale or foreign file → fallback).
    fn matches(&self, header: &RequestCacheHeader, scheme: &str) -> bool {
        header.master_seed == self.master_seed
            && header.users == self.users
            && header.days == self.days
            && header.mix_hash == self.mix_hash
            && header.sim_hash == self.sim_hash
            && header.scheme == scheme
    }
}

/// Per-user phase-1 request streams, index-ordered (`streams[i]` is
/// user `i`'s non-decreasing request times).
type Streams = Arc<Vec<Vec<Instant>>>;
/// Per-user baseline summaries, index-ordered: `(energy bits, switch
/// cycles)` of the status-quo run. Energy travels as `f64::to_bits` so
/// the entry is `Eq`-comparable and round-trips exactly.
type Baselines = Arc<Vec<(u64, u64)>>;

/// A phase-1 request (and baseline) cache shared across fleet runs.
///
/// Always holds an in-memory map; optionally spills request streams to
/// a directory of `.twc` files so later *processes* can warm-start too
/// (the CLI's `--cache <dir>`). All methods take `&self` and are
/// thread-safe; clones of the stored `Arc`s are handed out, so a hit
/// never copies the streams.
#[derive(Debug, Default)]
pub struct RequestCache {
    dir: Option<PathBuf>,
    streams: Mutex<HashMap<(Fingerprint, String), Streams>>,
    baselines: Mutex<HashMap<Fingerprint, Baselines>>,
}

impl RequestCache {
    /// A purely in-memory cache (the default for sweeps: first cell
    /// extracts, later cells replay, nothing persists).
    pub fn in_memory() -> RequestCache {
        RequestCache::default()
    }

    /// A cache that additionally spills request streams to `dir` as
    /// `.twc` files and warm-starts from files already there. Creates
    /// the directory if needed.
    pub fn with_dir(dir: impl Into<PathBuf>) -> std::io::Result<RequestCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RequestCache { dir: Some(dir), ..RequestCache::default() })
    }

    /// The spill directory, when this cache has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The spill file a `(fingerprint, scheme)` entry lives in (scheme
    /// tokens are filename-safe by construction).
    fn path_for(&self, fingerprint: &Fingerprint, scheme: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|dir| dir.join(format!("{:016x}-{scheme}.twc", fingerprint.hash())))
    }

    /// Looks up the request streams for `(fingerprint, scheme)`:
    /// memory first, then the spill directory. Counts exactly one of
    /// `cache_hits` / `cache_misses` per call, plus `cache_fallbacks`
    /// when an on-disk file existed but could not be trusted (corrupt,
    /// truncated, or announcing a different fingerprint) — the caller
    /// then recomputes, so a rotten file can cost time but never
    /// correctness.
    pub(crate) fn lookup(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        obs: Obs<'_>,
    ) -> Option<Streams> {
        let key = (*fingerprint, scheme.to_string());
        if let Some(hit) = self.streams.lock().expect("request cache map").get(&key) {
            obs.recorder.counter("cache_hits").incr();
            return Some(Arc::clone(hit));
        }
        if let Some(path) = self.path_for(fingerprint, scheme) {
            match std::fs::File::open(&path) {
                Ok(file) => match read_request_streams(std::io::BufReader::new(file)) {
                    Ok((header, streams)) if fingerprint.matches(&header, scheme) => {
                        let streams = Arc::new(streams);
                        self.streams
                            .lock()
                            .expect("request cache map")
                            .insert(key, Arc::clone(&streams));
                        obs.recorder.counter("cache_hits").incr();
                        return Some(streams);
                    }
                    // Readable but announcing some other population
                    // (hash-stem collision or a renamed file), or not
                    // readable at all: both are fallbacks.
                    Ok(_) | Err(_) => {
                        obs.recorder.counter("cache_fallbacks").incr();
                    }
                },
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(_) => {
                    obs.recorder.counter("cache_fallbacks").incr();
                }
            }
        }
        obs.recorder.counter("cache_misses").incr();
        None
    }

    /// Stores freshly extracted request streams, spilling to disk when
    /// a directory is configured. Spill failures count on
    /// `cache_fallbacks` and are otherwise swallowed — a read-only or
    /// full disk degrades the cache, never the run.
    pub(crate) fn store(
        &self,
        fingerprint: &Fingerprint,
        scheme: &str,
        streams: Streams,
        obs: Obs<'_>,
    ) {
        debug_assert_eq!(
            streams.len() as u64,
            fingerprint.users,
            "stream count must match the fingerprint's population"
        );
        self.streams
            .lock()
            .expect("request cache map")
            .insert((*fingerprint, scheme.to_string()), Arc::clone(&streams));
        let Some(path) = self.path_for(fingerprint, scheme) else { return };
        // Write-then-rename so a concurrent reader (or a crash) can
        // only ever observe a complete file — and even a torn rename
        // is caught by the reader's checksum. The tmp name carries a
        // process-wide sequence number on top of the pid: two threads
        // in one process storing the same key must not interleave
        // writes into a shared tmp file.
        static STORE_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = STORE_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let tmp = path.with_extension(format!("twc.tmp{}-{seq}", std::process::id()));
        let spilled = std::fs::File::create(&tmp)
            .map_err(|e| e.to_string())
            .and_then(|file| {
                write_request_streams(&fingerprint.header(scheme), &streams, file)
                    .map_err(|e| e.to_string())
            })
            .and_then(|()| std::fs::rename(&tmp, &path).map_err(|e| e.to_string()));
        match spilled {
            Ok(()) => obs.recorder.counter("cache_spills").incr(),
            Err(_) => {
                std::fs::remove_file(&tmp).ok();
                obs.recorder.counter("cache_fallbacks").incr();
            }
        }
    }

    /// Looks up the per-user baseline summaries for a population
    /// (in-memory only — baselines are cheap to hold and recompute
    /// compared to spilling them).
    pub(crate) fn lookup_baselines(&self, fingerprint: &Fingerprint) -> Option<Baselines> {
        self.baselines.lock().expect("baseline cache map").get(fingerprint).map(Arc::clone)
    }

    /// Stores per-user baseline summaries for a population.
    pub(crate) fn store_baselines(&self, fingerprint: &Fingerprint, baselines: Baselines) {
        self.baselines.lock().expect("baseline cache map").insert(*fingerprint, baselines);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_core::schemes::Scheme;
    use tailwise_obs::{Obs, Recorder as _};
    use tailwise_workload::apps::AppKind;

    /// The `rnc_storm.toml` population in miniature — the golden
    /// fingerprint subject.
    fn storm_like() -> Scenario {
        let mut s = Scenario::new(600, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.master_seed = 2012;
        s.shard_size = 32;
        s.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Email, 2.0)];
        s.cells = Some(crate::topology::NetworkTopology::with_rncs(3, 12));
        s
    }

    #[test]
    fn identity_changes_miss_and_policy_changes_hit() {
        let base = Fingerprint::of(&storm_like());

        // Identity fields: each change must invalidate.
        let mut reseeded = storm_like();
        reseeded.master_seed = 2013;
        assert_ne!(Fingerprint::of(&reseeded), base, "master seed must invalidate");

        let mut resized = storm_like();
        resized.users = 601;
        assert_ne!(Fingerprint::of(&resized), base, "user count must invalidate");

        let mut remixed = storm_like();
        remixed.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Email, 2.5)];
        assert_ne!(Fingerprint::of(&remixed), base, "app mix must invalidate");

        let mut recarriered = storm_like();
        recarriered.carrier_mix = vec![(CarrierProfile::att_hspa(), 1.0)];
        assert_ne!(Fingerprint::of(&recarriered), base, "carrier mix must invalidate");

        let mut longer = storm_like();
        longer.days_per_user = 2;
        assert_ne!(Fingerprint::of(&longer), base, "day count must invalidate");

        // Policy axes: sweeping them must NOT invalidate — that reuse
        // is the whole point of the cache.
        let mut reschemed = storm_like();
        reschemed.scheme = Scheme::FixedTail45;
        assert_eq!(Fingerprint::of(&reschemed), base, "scheme axis must not invalidate");

        let mut readmitted = storm_like();
        readmitted.cells.as_mut().unwrap().rnc_admission =
            crate::admission::AdmissionSpec::LoadReactive { watermark_per_s: 50, window_s: 5 };
        assert_eq!(Fingerprint::of(&readmitted), base, "admission axis must not invalidate");

        let mut resharded = storm_like();
        resharded.shard_size = 64;
        assert_eq!(Fingerprint::of(&resharded), base, "shard size must not invalidate");

        // Mobility is a topology axis: it moves requests between cells
        // but never changes which requests exist, so a mobility sweep
        // must share the static run's extraction pass.
        let mut commuted = storm_like();
        commuted.cells.as_mut().unwrap().mobility = crate::mobility::MobilitySpec::commute();
        assert_eq!(Fingerprint::of(&commuted), base, "mobility axis must not invalidate");
    }

    #[test]
    fn golden_fingerprint_hash_values_are_pinned() {
        // Pinned literals: the on-disk `.twc` naming contract. If a
        // deliberate hashing change lands, re-pin these — silently
        // drifting values would orphan every existing spill directory.
        assert_eq!(Fingerprint::of(&storm_like()).hash(), 0x7defa3bb02aa2399);
        let mut reseeded = storm_like();
        reseeded.master_seed = 1;
        assert_eq!(Fingerprint::of(&reseeded).hash(), 0x66c706f38c02825a);
    }

    #[test]
    fn day_clamp_is_fingerprint_visible() {
        // days_per_user 0 and 1 synthesize the same population (the
        // runner clamps to ≥ 1), so they must share a fingerprint.
        let mut zero = storm_like();
        zero.days_per_user = 0;
        assert_eq!(Fingerprint::of(&zero), Fingerprint::of(&storm_like()));
    }

    #[test]
    fn memory_cache_round_trips_and_counts() {
        let cache = RequestCache::in_memory();
        let mut tiny = storm_like();
        tiny.users = 3;
        let fp = Fingerprint::of(&tiny);
        let obs = Obs::none();
        assert!(cache.lookup(&fp, "makeidle", obs).is_none());
        let streams: Streams =
            Arc::new(vec![vec![Instant::from_secs(1)], vec![], vec![Instant::from_secs(2)]]);
        cache.store(&fp, "makeidle", Arc::clone(&streams), obs);
        assert_eq!(cache.lookup(&fp, "makeidle", obs).as_deref(), Some(&*streams));
        // A different scheme is a different entry.
        assert!(cache.lookup(&fp, "tail45", obs).is_none());
        // Baselines key on the fingerprint alone.
        assert!(cache.lookup_baselines(&fp).is_none());
        let baselines: Baselines = Arc::new(vec![(1, 2), (3, 4), (5, 6)]);
        cache.store_baselines(&fp, Arc::clone(&baselines));
        assert_eq!(cache.lookup_baselines(&fp).as_deref(), Some(&*baselines));
    }

    #[test]
    fn disk_cache_spills_and_warm_starts() {
        let dir = std::env::temp_dir().join(format!("tailwise-cache-unit-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // The spill header claims the fingerprint's user count, so the
        // stream vector must match it — two users here.
        let mut tiny = storm_like();
        tiny.users = 2;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::ZERO, Instant::from_secs(3)], vec![]]);

        let writer = RequestCache::with_dir(&dir).unwrap();
        writer.store(&fp, "makeidle", Arc::clone(&streams), Obs::none());
        let spilled = dir.join(format!("{:016x}-makeidle.twc", fp.hash()));
        assert!(spilled.is_file(), "missing spill file {}", spilled.display());

        // A fresh cache (fresh process, conceptually) warm-starts from
        // the spill file alone.
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, "makeidle", Obs::none()).as_deref(), Some(&*streams));

        // Corrupt the file: a third cache must fall back cleanly.
        let mut bytes = std::fs::read(&spilled).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        std::fs::write(&spilled, &bytes).unwrap();
        let fallback = RequestCache::with_dir(&dir).unwrap();
        assert!(fallback.lookup(&fp, "makeidle", Obs::none()).is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_stores_of_one_key_never_corrupt_the_spill() {
        // Regression: the spill tmp filename used to be pid-only, so
        // two threads in one process storing the same (fingerprint,
        // scheme) interleaved writes into a single tmp file — a corrupt
        // spill surfacing later as silent cache_fallbacks.
        let dir = std::env::temp_dir().join(format!("tailwise-cache-race-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 2;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::ZERO, Instant::from_secs(7)], vec![]]);

        let recorder = tailwise_obs::StatsRecorder::new();
        for _round in 0..4 {
            let writer = RequestCache::with_dir(&dir).unwrap();
            std::thread::scope(|scope| {
                for _thread in 0..8 {
                    let writer = &writer;
                    let fp = &fp;
                    let streams = Arc::clone(&streams);
                    let recorder = &recorder;
                    scope.spawn(move || {
                        let obs = Obs { recorder, progress: None };
                        writer.store(fp, "makeidle", streams, obs);
                    });
                }
            });
        }

        // Every store spilled cleanly: no interleaved tmp writes, no
        // swallowed spill failures, no stray tmp litter.
        let snapshot = recorder.snapshot();
        assert_eq!(snapshot.counter("cache_fallbacks"), 0, "some store fell back");
        assert_eq!(snapshot.counter("cache_spills"), 32, "every store must spill");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|entry| entry.unwrap().file_name().into_string().unwrap())
            .filter(|name| !name.ends_with(".twc"))
            .collect();
        assert!(leftovers.is_empty(), "tmp files left behind: {leftovers:?}");

        // A fresh cache (conceptually a fresh process) warm-reads the
        // final file with a hit and zero fallbacks.
        let read_recorder = tailwise_obs::StatsRecorder::new();
        let read_obs = Obs { recorder: &read_recorder, progress: None };
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, "makeidle", read_obs).as_deref(), Some(&*streams));
        let read_snapshot = read_recorder.snapshot();
        assert_eq!(read_snapshot.counter("cache_hits"), 1);
        assert_eq!(read_snapshot.counter("cache_fallbacks"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fractional_iat_scheme_token_survives_the_spill_filename() {
        // `iat92.5` round-trips Display → FromStr …
        let scheme = Scheme::PercentileIat(0.925);
        let token = scheme.to_string();
        assert_eq!(token, "iat92.5");
        assert_eq!(token.parse::<Scheme>().unwrap(), scheme);

        // … and the dot inside the token survives path_for → warm
        // lookup (with_extension-style suffix surgery on the tmp file
        // must not eat the token's fractional part).
        let dir = std::env::temp_dir().join(format!("tailwise-cache-frac-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut tiny = storm_like();
        tiny.users = 1;
        let fp = Fingerprint::of(&tiny);
        let streams: Streams = Arc::new(vec![vec![Instant::from_secs(11)]]);
        let writer = RequestCache::with_dir(&dir).unwrap();
        writer.store(&fp, &token, Arc::clone(&streams), Obs::none());
        let spilled = dir.join(format!("{:016x}-iat92.5.twc", fp.hash()));
        assert!(spilled.is_file(), "missing spill file {}", spilled.display());

        let read_recorder = tailwise_obs::StatsRecorder::new();
        let read_obs = Obs { recorder: &read_recorder, progress: None };
        let reader = RequestCache::with_dir(&dir).unwrap();
        assert_eq!(reader.lookup(&fp, &token, read_obs).as_deref(), Some(&*streams));
        assert_eq!(read_recorder.snapshot().counter("cache_hits"), 1);
        assert_eq!(read_recorder.snapshot().counter("cache_fallbacks"), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
