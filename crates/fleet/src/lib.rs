//! # tailwise-fleet
//!
//! Population-scale parallel simulation for the tailwise reproduction of
//! *"Traffic-Aware Techniques to Reduce 3G/LTE Wireless Energy
//! Consumption"* (Deng & Balakrishnan, CoNEXT 2012).
//!
//! The paper evaluates MakeIdle/MakeActive on 28 user-days of traces.
//! The interesting deployment questions — how much energy does a scheme
//! save across a *population*, how is the saving distributed over users,
//! what does the network-wide signaling load look like — need orders of
//! magnitude more user-days than any single trace. This crate runs the
//! paper's schemes over synthetic populations of hundreds of thousands
//! of users, in parallel, deterministically:
//!
//! * [`Scenario`] — the declarative experiment: population size, app-mix
//!   weights over [`tailwise_workload::AppKind`], carrier mix, scheme
//!   under test, days per user, master seed;
//! * [`scenario`] — hierarchical seeding: user `i` is a pure function of
//!   `(master_seed, i)`, so any worker can materialize any user;
//! * [`source`] — the [`UserSource`] abstraction: synthetic populations
//!   or on-disk `.twt`/`.twt.csv` corpora ([`CorpusScenario`]) replayed
//!   through the same sharded runner, plus [`synth_corpus`] to
//!   materialize any synthetic scenario into a corpus;
//! * [`mod@file`]/[`sweep`] — the on-disk scenario format
//!   (`docs/SCENARIO_FORMAT.md`): [`Scenario::from_file`] /
//!   [`Scenario::to_file`] round-tripping, [`SourceSet`] files whose
//!   `[corpus]` table replays measured traffic, and `[[sweep]]` axes
//!   that expand into a matrix of runs folded into a side-by-side
//!   [`SweepReport`];
//! * [`runner`] — sharded multi-threaded execution,
//!   generate→simulate→discard (peak memory: one trace per worker,
//!   for corpora too);
//! * [`cache`] — phase-1 request caching for sweeps: a [`RequestCache`]
//!   keyed on the scenario's scheme-independent [`Fingerprint`] lets an
//!   N-cell admission or scheme sweep pay one extraction pass and serve
//!   every later cell from memory (or a `.twc` spill directory), with a
//!   corrupt-or-mismatched file always falling back to recomputation;
//! * [`topology`]/[`admission`] — the hierarchical radio network: a
//!   [`NetworkTopology`] partitions users across cells and groups the
//!   cells under RNCs; every fast-dormancy request passes two pluggable
//!   [`AdmissionSpec`] gates (cell, then RNC — static, rate-limited, or
//!   load-reactive), and the two-pass runner (built on
//!   [`tailwise_sim::twophase`]) reports per-cell and per-RNC signaling
//!   load — the paper's §7/§8 population question;
//! * [`mobility`] — how users move between cells: [`MobilitySpec`]
//!   keeps membership a pure function of `(master seed, user, time)`
//!   (static pinning or a seeded diurnal commute with random-walk
//!   jitter), so handoffs generate deterministic signaling load and a
//!   residence-time hint lets schemes demote ahead of a predicted
//!   handoff;
//! * [`Histogram`] — fixed-bin streaming distribution with percentile
//!   readout;
//! * [`FleetReport`] — the merged aggregate: total/mean energy, the
//!   per-user savings distribution, MakeActive session-delay
//!   percentiles, false/missed switch totals, per-cell signaling load
//!   ([`FleetSignaling`]), and throughput in user-days per second.
//!
//! ## Determinism contract
//!
//! `run(&scenario, t)` returns a bit-identical [`FleetReport`] for every
//! `t ≥ 1`. The reduction order is fixed by the scenario's shard size,
//! not by thread scheduling: users fold in index order within a shard,
//! shards merge in index order at the end. The tests in this crate pin
//! that contract at 1, 2, and 8 threads. Sweep expansion preserves it
//! cell-by-cell: every [`SweepReport`] cell is bit-identical to running
//! that expansion individually.
//!
//! ## Quick start
//!
//! ```
//! use tailwise_core::schemes::Scheme;
//! use tailwise_fleet::{run, Scenario};
//! use tailwise_radio::profile::CarrierProfile;
//!
//! let mut scenario =
//!     Scenario::new(12, Scheme::MakeIdle, CarrierProfile::verizon_lte());
//! scenario.shard_size = 4;
//! let report = run(&scenario, 2);
//! assert_eq!(report.users, 12);
//! // MakeIdle reclaims tail energy on any plausible population.
//! assert!(report.aggregate_savings_pct() > 0.0);
//! println!("{}", report.render());
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod admission;
pub mod cache;
pub mod file;
pub mod histogram;
pub mod manifest;
pub mod mobility;
pub mod report;
pub mod runner;
pub mod scenario;
pub mod source;
pub mod sweep;
pub mod topology;

pub use admission::AdmissionSpec;
pub use cache::{Fingerprint, RequestCache};
pub use histogram::Histogram;
pub use manifest::{ManifestReport, ManifestSignaling, RunManifest};
pub use mobility::{Handoff, MobilitySpec};
pub use report::{CellLoad, FleetReport, FleetSignaling, RncLoad, RunTimings};
pub use runner::{
    run, run_cached, run_corpus, run_corpus_observed, run_observed, run_pinned_corpus,
    run_pinned_corpus_observed, run_source, run_source_cached, run_source_observed,
};
pub use scenario::{user_seed, Scenario};
pub use source::{synth_corpus, CorpusScenario, CorpusSpec, SourceSet, UserSource};
pub use sweep::{
    run_source_sweep, run_source_sweep_cached, run_source_sweep_observed,
    run_source_sweep_streamed, run_sweep, run_sweep_cached, run_sweep_observed, ScenarioSet,
    SweepAxis, SweepReport, SweepRow,
};
pub use topology::{cell_of, merge_requests, rnc_of_cell, NetworkTopology};

#[cfg(test)]
mod tests {
    //! The fleet's two headline guarantees: thread-count invariance and
    //! paper-consistent aggregate savings.

    use tailwise_core::schemes::Scheme;
    use tailwise_radio::profile::CarrierProfile;
    use tailwise_workload::apps::AppKind;

    use crate::{run, Scenario};

    /// A population small enough for CI but large enough to span several
    /// shards and exercise work stealing. The app mix is restricted to
    /// the two lightest §6.1 categories so debug-mode CI stays fast; the
    /// savings test below keeps the full default mix.
    fn scenario(scheme: Scheme) -> Scenario {
        let mut s = Scenario::new(12, scheme, CarrierProfile::verizon_lte());
        s.shard_size = 5; // 3 shards, last one ragged
        s.master_seed = 0xF1EE7;
        s.app_mix = vec![(AppKind::Im, 3.0), (AppKind::Finance, 1.0)];
        s
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let s = scenario(Scheme::MakeIdle);
        let single = run(&s, 1);
        let double = run(&s, 2);
        let octo = run(&s, 8);
        // PartialEq on FleetReport compares every f64 via to_bits.
        assert_eq!(single, double);
        assert_eq!(single, octo);
        assert!(single.users == 12 && single.packets > 0);
    }

    #[test]
    fn makeidle_saves_energy_in_aggregate() {
        // Full default app mix: this is the aggregate-savings acceptance
        // claim in miniature.
        let mut s = Scenario::new(8, Scheme::MakeIdle, CarrierProfile::verizon_lte());
        s.shard_size = 3;
        s.master_seed = 0xF1EE7;
        let r = run(&s, 4);
        // The paper's per-trace results put MakeIdle around 50% on
        // Verizon LTE; a mixed background-heavy population lands in the
        // same regime. Be generous to stochastic population draws while
        // still catching sign errors and broken folds.
        let agg = r.aggregate_savings_pct();
        assert!(agg > 30.0, "aggregate savings {agg}%");
        assert!(agg < 95.0, "aggregate savings implausibly high: {agg}%");
        // Savings should also hold user-by-user in the median.
        let p50 = r.savings.percentile(0.5).unwrap();
        assert!(p50 > 20.0, "median user saves {p50}%");
        // MakeIdle trades switches for energy: more cycles than the
        // status quo, and some scored decisions.
        assert!(r.switches > r.baseline_switches);
        assert!(r.decisions > 0);
    }

    #[test]
    fn master_seed_changes_the_population() {
        let a = run(&scenario(Scheme::MakeIdle), 4);
        let mut s = scenario(Scheme::MakeIdle);
        s.master_seed ^= 1;
        let b = run(&s, 4);
        assert_ne!(a.packets, b.packets);
    }

    #[test]
    fn oracle_dominates_makeidle_in_aggregate() {
        let mi = run(&scenario(Scheme::MakeIdle), 4);
        let oracle = run(&scenario(Scheme::Oracle), 4);
        // Identical populations (same seed), so totals are comparable.
        assert_eq!(mi.baseline_energy_j.to_bits(), oracle.baseline_energy_j.to_bits());
        assert!(oracle.energy_j <= mi.energy_j + 1e-6);
    }
}
