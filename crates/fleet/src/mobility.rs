//! User mobility: where each user *is* over time, as a pure function.
//!
//! PR 5's hierarchy pinned every user to one cell forever
//! ([`cell_of`]), so the network never saw the signaling load that
//! dominates real RNCs: handoffs. A [`MobilitySpec`] makes cell
//! membership piecewise over time while preserving the fleet's core
//! invariant — **bit-identical reports at any thread count** — by
//! making the whole trajectory a pure function of `(master seed, user
//! index, time)`. No per-user state is carried across shards or
//! threads; any worker can ask "where is user `i` at time `t`?" and
//! get the same answer.
//!
//! ## Models
//!
//! * [`Static`](MobilitySpec::Static) — today's behavior, exactly:
//!   `cell_at` is [`cell_of`] for every `t`, zero handoffs, zero new
//!   messages. A static fleet is bit-identical to a pre-mobility fleet,
//!   rendered text included (pinned by `tests/mobility_fleet.rs`).
//! * [`Commute`](MobilitySpec::Commute) — each user gets a seeded
//!   **home cell** (their [`cell_of`] anchor, so the overnight
//!   population matches the static assignment), a seeded **work cell**,
//!   and a diurnal schedule: they leave home at a per-user minute inside
//!   the configured `home_hour`, sit in the work cell until a per-user
//!   minute inside `work_hour`, and are home otherwise. On top of the
//!   commute, a **random-walk jitter** component sends the user to a
//!   seeded detour cell for whole hour-slots with probability
//!   `jitter_pct`% per slot (lunch, errands) — each slot's draw is an
//!   independent hash of `(user seed, absolute hour)`, so consecutive
//!   detours can chain into multi-hop walks.
//!
//! ## Handoffs
//!
//! The trajectory is piecewise-constant with breakpoints only at hour
//! boundaries and the two per-user commute instants, so handoffs are
//! enumerable exactly: [`MobilitySpec::handoffs`] walks the breakpoints
//! of `[0, horizon_days)` and reports every cell change. The topology
//! runner charges each handoff [`SignalingModel`] `per_handoff`
//! messages at the source *and* target cell (and at both RNCs when the
//! handoff crosses an RNC boundary), interleaved into the adjudication
//! stream in `(time, user)` order so load-reactive admission observes
//! handoff storms as they happen.
//!
//! Handoffs are charged over each user's *active span*: through the end
//! of the calendar day of their last fast-dormancy request. A user who
//! never requests loads no one. Deriving the horizon from the request
//! stream (rather than from trace metadata) keeps the `.twc` phase-1
//! cache format unchanged and cached runs bit-identical to uncached
//! ones.
//!
//! ## The residence-time release hint
//!
//! [`MobilitySpec::handoff_within`] answers "will this user hand off in
//! the next `hint_s` seconds?" — the predictive lever of *Predictive
//! Green Wireless Access* (PAPERS.md). The adjudicator grants any
//! fast-dormancy request inside that window unconditionally (bypassing
//! both admission gates): the network *wants* the device dormant before
//! the handoff, because an idle-mode cell reselection is far cheaper
//! than an active handover. Static fleets never hint (no handoffs
//! exist to predict), so the hint cannot perturb static bit-identity.
//!
//! [`SignalingModel`]: tailwise_radio::signaling::SignalingModel

use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Instant;

use crate::scenario::user_seed;
use crate::topology::cell_of;

/// Salt for the seeded work-cell draw (the home cell is the user's
/// [`cell_of`] anchor and needs no extra salt).
const WORK_SALT: u64 = 0x3093_BA5E_0000_0000;
/// Salt for the per-user leave-home minute inside `home_hour`.
const DEPART_SALT: u64 = 0x0800_C0DE_0000_0000;
/// Salt for the per-user leave-work minute inside `work_hour`.
const RETURN_SALT: u64 = 0x1700_C0DE_0000_0000;
/// Salt for the per-slot random-walk jitter draw.
const JITTER_SALT: u64 = 0x3177_E200_0000_0000;

/// Seconds per jitter slot: detours last whole hours.
const SLOT_S: u64 = 3600;
/// Seconds per day.
const DAY_S: u64 = 86_400;

/// Default hour the commute leaves home.
pub const DEFAULT_HOME_HOUR: u32 = 8;
/// Default hour the commute leaves work.
pub const DEFAULT_WORK_HOUR: u32 = 17;
/// Default per-slot detour probability, percent.
pub const DEFAULT_JITTER_PCT: u32 = 5;
/// Default residence-time hint window, seconds.
pub const DEFAULT_HINT_S: u32 = 60;

/// A declarative (file-representable) mobility model: where each user
/// is at each instant, as a pure function of `(master seed, user index,
/// time)`. See the module docs for the trajectory construction and the
/// determinism contract; the on-disk `[mobility]` table is documented
/// in `docs/SCENARIO_FORMAT.md`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MobilitySpec {
    /// Users never move: `cell_at` is [`cell_of`] for every `t`. The
    /// default, and bit-identical to the pre-mobility runner.
    #[default]
    Static,
    /// Home↔work diurnal commute plus hourly random-walk detours.
    Commute {
        /// Hour of day (0–23) the user leaves home; the exact second is
        /// a per-user draw inside this hour.
        home_hour: u32,
        /// Hour of day (0–23, must exceed `home_hour`) the user leaves
        /// work; the exact second is a per-user draw inside this hour.
        work_hour: u32,
        /// Probability (percent, 0–100) that any given hour-slot is
        /// spent in a seeded detour cell instead of the scheduled one.
        jitter_pct: u32,
        /// Residence-time release hint window, seconds: fast-dormancy
        /// requests within this many seconds of a predicted handoff are
        /// granted unconditionally. Zero disables the hint.
        hint_s: u32,
    },
}

/// One enumerated handoff: at `at`, the user leaves `from` for `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handoff {
    /// The boundary instant. The user occupies `to` from `at` onward
    /// (boundaries are inclusive on the new-cell side, matching
    /// [`MobilitySpec::cell_at`]).
    pub at: Instant,
    /// Cell vacated.
    pub from: u64,
    /// Cell entered.
    pub to: u64,
}

/// A user's deterministic commute parameters, derived once per user.
struct CommutePlan {
    home: u64,
    work: u64,
    /// Second-of-day the user leaves home.
    leave_home: u64,
    /// Second-of-day the user leaves work.
    leave_work: u64,
    jitter_pct: u64,
    /// Pre-mixed per-user jitter seed (`splitmix` once more per slot).
    jitter_seed: u64,
}

impl CommutePlan {
    fn derive(
        master_seed: u64,
        index: u64,
        cells: u64,
        home_hour: u32,
        work_hour: u32,
        jitter_pct: u32,
    ) -> CommutePlan {
        let seed = user_seed(master_seed, index);
        CommutePlan {
            home: cell_of(master_seed, index, cells),
            work: splitmix(seed ^ WORK_SALT) % cells,
            leave_home: home_hour as u64 * SLOT_S + splitmix(seed ^ DEPART_SALT) % SLOT_S,
            leave_work: work_hour as u64 * SLOT_S + splitmix(seed ^ RETURN_SALT) % SLOT_S,
            jitter_pct: jitter_pct as u64,
            jitter_seed: splitmix(seed ^ JITTER_SALT),
        }
    }

    /// The cell this plan occupies at absolute second `s`. Tolerant of
    /// degenerate parameters (a schedule that never reaches work simply
    /// stays home), so programmatic construction cannot panic here.
    fn cell_at_second(&self, s: u64, cells: u64) -> u64 {
        let tod = s % DAY_S;
        let base =
            if self.leave_work > self.leave_home && tod >= self.leave_home && tod < self.leave_work
            {
                self.work
            } else {
                self.home
            };
        if cells > 1 && self.jitter_pct > 0 {
            let draw = splitmix(self.jitter_seed ^ (s / SLOT_S));
            if draw % 100 < self.jitter_pct {
                // A detour cell guaranteed distinct from the scheduled
                // one; the draw differs per slot, so chained detours
                // walk randomly.
                return (base + 1 + splitmix(draw) % (cells - 1)) % cells;
            }
        }
        base
    }

    /// Candidate trajectory breakpoints inside `(lo, hi]`, ascending:
    /// hour-slot boundaries plus the two commute instants of every day
    /// the window touches. The trajectory is constant between
    /// consecutive candidates.
    fn breakpoints_between(&self, lo: u64, hi: u64) -> Vec<u64> {
        let mut points = Vec::new();
        let mut slot = lo / SLOT_S + 1;
        while slot * SLOT_S <= hi {
            points.push(slot * SLOT_S);
            slot += 1;
        }
        let mut day = lo / DAY_S;
        while day * DAY_S <= hi {
            for commute in [self.leave_home, self.leave_work] {
                let at = day * DAY_S + commute;
                if at > lo && at <= hi {
                    points.push(at);
                }
            }
            day += 1;
        }
        points.sort_unstable();
        points.dedup();
        points
    }
}

impl MobilitySpec {
    /// A [`Commute`](MobilitySpec::Commute) with every parameter at its
    /// default (leave home inside hour 8, leave work inside hour 17,
    /// 5% hourly detours, 60 s hint window).
    pub fn commute() -> MobilitySpec {
        MobilitySpec::Commute {
            home_hour: DEFAULT_HOME_HOUR,
            work_hour: DEFAULT_WORK_HOUR,
            jitter_pct: DEFAULT_JITTER_PCT,
            hint_s: DEFAULT_HINT_S,
        }
    }

    /// True for the [`Static`](MobilitySpec::Static) model — the
    /// no-handoff fast path the topology runner keys on.
    pub fn is_static(&self) -> bool {
        matches!(self, MobilitySpec::Static)
    }

    /// The stable on-disk kind token (`model = "..."` in the
    /// `[mobility]` table). Parameters ride in separate keys there; the
    /// compact one-token spelling is [`Display`](std::fmt::Display).
    pub fn token(&self) -> &'static str {
        match self {
            MobilitySpec::Static => "static",
            MobilitySpec::Commute { .. } => "commute",
        }
    }

    /// The cell user `index` occupies at `at` — a pure function of its
    /// arguments (the determinism seam both topology passes share).
    ///
    /// Boundaries are inclusive on the new-cell side: a request stamped
    /// exactly at a handoff instant is adjudicated in the cell being
    /// entered.
    pub fn cell_at(&self, master_seed: u64, index: u64, cells: u64, at: Instant) -> u64 {
        assert!(cells >= 1, "a network topology needs at least one cell");
        match *self {
            MobilitySpec::Static => cell_of(master_seed, index, cells),
            MobilitySpec::Commute { home_hour, work_hour, jitter_pct, .. } => {
                let plan = CommutePlan::derive(
                    master_seed,
                    index,
                    cells,
                    home_hour,
                    work_hour,
                    jitter_pct,
                );
                plan.cell_at_second(second_of(at), cells)
            }
        }
    }

    /// Every handoff user `index` performs in `[0, horizon_days)` days,
    /// in time order. Empty for [`Static`](MobilitySpec::Static) and
    /// for single-cell topologies.
    pub fn handoffs(
        &self,
        master_seed: u64,
        index: u64,
        cells: u64,
        horizon_days: u64,
    ) -> Vec<Handoff> {
        let MobilitySpec::Commute { home_hour, work_hour, jitter_pct, .. } = *self else {
            return Vec::new();
        };
        if cells <= 1 || horizon_days == 0 {
            return Vec::new();
        }
        let plan = CommutePlan::derive(master_seed, index, cells, home_hour, work_hour, jitter_pct);
        let hi = horizon_days * DAY_S;
        let mut handoffs = Vec::new();
        let mut cell = plan.cell_at_second(0, cells);
        for at in plan.breakpoints_between(0, hi.saturating_sub(1)) {
            let next = plan.cell_at_second(at, cells);
            if next != cell {
                handoffs.push(Handoff { at: Instant::from_secs(at as i64), from: cell, to: next });
                cell = next;
            }
        }
        handoffs
    }

    /// True when the model predicts a handoff within `(at, at +
    /// hint_s]` — the residence-time release hint. Always false for
    /// [`Static`](MobilitySpec::Static), for single-cell topologies,
    /// and when the spec's hint window is zero.
    pub fn handoff_within(&self, master_seed: u64, index: u64, cells: u64, at: Instant) -> bool {
        let MobilitySpec::Commute { home_hour, work_hour, jitter_pct, hint_s } = *self else {
            return false;
        };
        if cells <= 1 || hint_s == 0 {
            return false;
        }
        let plan = CommutePlan::derive(master_seed, index, cells, home_hour, work_hour, jitter_pct);
        let now = second_of(at);
        let here = plan.cell_at_second(now, cells);
        plan.breakpoints_between(now, now + hint_s as u64)
            .into_iter()
            .any(|bp| plan.cell_at_second(bp, cells) != here)
    }
}

/// Floor-seconds of an instant, clamped at zero (trajectories are
/// defined from midnight of day 0).
fn second_of(at: Instant) -> u64 {
    at.as_micros().div_euclid(1_000_000).max(0) as u64
}

impl std::fmt::Display for MobilitySpec {
    /// The compact one-token spelling used by sweep values and CLI
    /// flags: `static`, or `commute[:<home_hour>:<work_hour>
    /// [:<jitter_pct>[:<hint_s>]]]` with trailing default components
    /// omitted. Round-trips through [`FromStr`](std::str::FromStr).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            MobilitySpec::Static => write!(f, "static"),
            MobilitySpec::Commute { home_hour, work_hour, jitter_pct, hint_s } => {
                write!(f, "commute")?;
                let defaults = [
                    (home_hour, DEFAULT_HOME_HOUR),
                    (work_hour, DEFAULT_WORK_HOUR),
                    (jitter_pct, DEFAULT_JITTER_PCT),
                    (hint_s, DEFAULT_HINT_S),
                ];
                let keep = defaults
                    .iter()
                    .rposition(|&(value, default)| value != default)
                    .map_or(0, |last| last + 1)
                    // The hour pair travels together: emitting only one
                    // would be ambiguous to read back.
                    .max(if home_hour != DEFAULT_HOME_HOUR || work_hour != DEFAULT_WORK_HOUR {
                        2
                    } else {
                        0
                    });
                for &(value, _) in &defaults[..keep] {
                    write!(f, ":{value}")?;
                }
                Ok(())
            }
        }
    }
}

/// Validates one commute parameter set (shared by the token parser and
/// the `[mobility]` table decoder, so both reject with the same words).
pub(crate) fn check_commute(home_hour: u32, work_hour: u32, jitter_pct: u32) -> Result<(), String> {
    if home_hour >= 24 || work_hour >= 24 {
        return Err(format!(
            "commute hours must be hours of day (0-23), got {home_hour} and {work_hour}"
        ));
    }
    if work_hour <= home_hour {
        return Err(format!(
            "commute must leave home before leaving work, got hours {home_hour} and {work_hour}"
        ));
    }
    if jitter_pct > 100 {
        return Err(format!("jitter_pct is a percentage (0-100), got {jitter_pct}"));
    }
    Ok(())
}

impl std::str::FromStr for MobilitySpec {
    type Err = String;

    fn from_str(token: &str) -> Result<MobilitySpec, String> {
        let mut parts = token.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let usage = "one of static, commute[:<home_hour>:<work_hour>[:<jitter_pct>[:<hint_s>]]]";
        let number = |what: &str, raw: &str| -> Result<u32, String> {
            raw.parse::<u32>().map_err(|_| format!("commute {what} {raw:?} is not a number"))
        };
        match kind {
            "static" => match args.is_empty() {
                true => Ok(MobilitySpec::Static),
                false => Err(format!("`static` takes no parameters; {usage}")),
            },
            "commute" => {
                let (home_hour, work_hour, jitter_pct, hint_s) = match args.as_slice() {
                    [] => {
                        (DEFAULT_HOME_HOUR, DEFAULT_WORK_HOUR, DEFAULT_JITTER_PCT, DEFAULT_HINT_S)
                    }
                    [home, work] => (
                        number("home hour", home)?,
                        number("work hour", work)?,
                        DEFAULT_JITTER_PCT,
                        DEFAULT_HINT_S,
                    ),
                    [home, work, jitter] => (
                        number("home hour", home)?,
                        number("work hour", work)?,
                        number("jitter", jitter)?,
                        DEFAULT_HINT_S,
                    ),
                    [home, work, jitter, hint] => (
                        number("home hour", home)?,
                        number("work hour", work)?,
                        number("jitter", jitter)?,
                        number("hint window", hint)?,
                    ),
                    _ => {
                        return Err(format!(
                            "`commute` parameters come as the hour pair, optionally followed by \
                             jitter and hint window; {usage}"
                        ))
                    }
                };
                check_commute(home_hour, work_hour, jitter_pct)?;
                Ok(MobilitySpec::Commute { home_hour, work_hour, jitter_pct, hint_s })
            }
            other => Err(format!("unknown mobility model {other:?}; {usage}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CELLS: u64 = 12;
    const SEED: u64 = 2012;

    #[test]
    fn static_mobility_is_cell_of_forever() {
        for index in 0..50 {
            for t in [0i64, 3599, 86_400, 777_777] {
                assert_eq!(
                    MobilitySpec::Static.cell_at(SEED, index, CELLS, Instant::from_secs(t)),
                    cell_of(SEED, index, CELLS)
                );
            }
            assert!(MobilitySpec::Static.handoffs(SEED, index, CELLS, 7).is_empty());
            assert!(!MobilitySpec::Static.handoff_within(
                SEED,
                index,
                CELLS,
                Instant::from_secs(28_800)
            ));
        }
    }

    /// A jitter-free commute, so the diurnal schedule is directly
    /// observable.
    fn plain_commute() -> MobilitySpec {
        MobilitySpec::Commute { home_hour: 8, work_hour: 17, jitter_pct: 0, hint_s: 60 }
    }

    #[test]
    fn commute_anchors_home_at_the_static_cell() {
        // Midnight finds every user in their cell_of anchor: the
        // overnight population matches the static assignment exactly.
        // (Jitter-free spec — the random walk may detour any slot,
        // including midnight.)
        for index in 0..100 {
            assert_eq!(
                plain_commute().cell_at(SEED, index, CELLS, Instant::ZERO),
                cell_of(SEED, index, CELLS),
                "user {index} overnights away from home"
            );
        }
    }

    #[test]
    fn commute_sits_at_work_between_the_scheduled_hours() {
        let spec = plain_commute();
        for index in 0..100 {
            let home = spec.cell_at(SEED, index, CELLS, Instant::ZERO);
            // Strictly inside the work block for every per-user minute
            // draw: after 09:00, before 17:00.
            let noon = spec.cell_at(SEED, index, CELLS, Instant::from_secs(12 * 3600));
            let seed = user_seed(SEED, index);
            let work = splitmix(seed ^ WORK_SALT) % CELLS;
            assert_eq!(noon, work, "user {index} not at work at noon");
            // And home again in the evening (after 18:00) and at 07:00.
            for t in [7 * 3600, 19 * 3600] {
                assert_eq!(
                    spec.cell_at(SEED, index, CELLS, Instant::from_secs(t)),
                    home,
                    "user {index} away from home at {t}s"
                );
            }
        }
    }

    #[test]
    fn handoff_enumeration_matches_a_brute_force_second_scan() {
        // The exact claim the adjudicator relies on: the breakpoint
        // walk reports precisely the seconds where cell_at changes.
        let spec = MobilitySpec::Commute { home_hour: 8, work_hour: 17, jitter_pct: 20, hint_s: 0 };
        for index in [0u64, 3, 7] {
            let listed = spec.handoffs(SEED, index, CELLS, 2);
            let mut scanned = Vec::new();
            let mut prev = spec.cell_at(SEED, index, CELLS, Instant::ZERO);
            for s in 1..(2 * 86_400i64) {
                let next = spec.cell_at(SEED, index, CELLS, Instant::from_secs(s));
                if next != prev {
                    scanned.push(Handoff { at: Instant::from_secs(s), from: prev, to: next });
                    prev = next;
                }
            }
            assert_eq!(listed, scanned, "user {index}");
            assert!(!listed.is_empty(), "a jittery commuter must hand off within two days");
            // Consecutive handoffs chain: each leaves the cell the
            // previous one entered.
            for pair in listed.windows(2) {
                assert_eq!(pair[0].to, pair[1].from);
            }
        }
    }

    #[test]
    fn handoff_within_agrees_with_the_enumeration() {
        let spec =
            MobilitySpec::Commute { home_hour: 8, work_hour: 17, jitter_pct: 10, hint_s: 90 };
        for index in 0..5u64 {
            let handoffs = spec.handoffs(SEED, index, CELLS, 1);
            for h in &handoffs {
                // Just inside the window: predicted.
                let before = Instant::from_micros(h.at.as_micros() - 1_000_000);
                assert!(
                    spec.handoff_within(SEED, index, CELLS, before),
                    "user {index}: handoff at {:?} not predicted 1s out",
                    h.at
                );
            }
            // A quiet stretch far from any breakpoint: no prediction.
            let quiet = Instant::from_secs(2 * 3600 + 100);
            let predicted = spec.handoff_within(SEED, index, CELLS, quiet);
            let actual = handoffs
                .iter()
                .any(|h| h.at > quiet && h.at.as_micros() <= quiet.as_micros() + 90_000_000);
            assert_eq!(predicted, actual, "user {index} at 02:01:40");
        }
    }

    #[test]
    fn single_cell_topologies_never_hand_off() {
        let spec = MobilitySpec::commute();
        assert!(spec.handoffs(SEED, 1, 1, 30).is_empty());
        assert!(!spec.handoff_within(SEED, 1, 1, Instant::from_secs(28_800)));
        assert_eq!(spec.cell_at(SEED, 1, 1, Instant::from_secs(12 * 3600)), 0);
    }

    #[test]
    fn trajectories_are_seed_sensitive_and_deterministic() {
        let spec = MobilitySpec::commute();
        let a: Vec<Handoff> = spec.handoffs(SEED, 5, CELLS, 3);
        assert_eq!(a, spec.handoffs(SEED, 5, CELLS, 3), "must be replayable");
        let moved = (0..200u64)
            .filter(|&i| {
                spec.cell_at(SEED, i, CELLS, Instant::from_secs(43_200))
                    != spec.cell_at(SEED ^ 1, i, CELLS, Instant::from_secs(43_200))
            })
            .count();
        assert!(moved > 100, "only {moved} of 200 users moved on reseed");
    }

    #[test]
    fn tokens_round_trip_with_trailing_defaults_omitted() {
        for (spec, token) in [
            (MobilitySpec::Static, "static"),
            (MobilitySpec::commute(), "commute"),
            (
                MobilitySpec::Commute { home_hour: 7, work_hour: 18, jitter_pct: 5, hint_s: 60 },
                "commute:7:18",
            ),
            (
                MobilitySpec::Commute { home_hour: 8, work_hour: 17, jitter_pct: 25, hint_s: 60 },
                "commute:8:17:25",
            ),
            (
                MobilitySpec::Commute { home_hour: 8, work_hour: 17, jitter_pct: 5, hint_s: 300 },
                "commute:8:17:5:300",
            ),
        ] {
            assert_eq!(spec.to_string(), token);
            assert_eq!(token.parse::<MobilitySpec>().unwrap(), spec, "token {token:?}");
        }
    }

    #[test]
    fn malformed_tokens_explain_themselves() {
        for (token, needle) in [
            ("teleport", "unknown mobility model"),
            ("static:1", "takes no parameters"),
            ("commute:8", "hour pair"),
            ("commute:8:17:5:60:1", "hour pair"),
            ("commute:late:17", "not a number"),
            ("commute:8:25", "hours of day"),
            ("commute:17:8", "leave home before leaving work"),
            ("commute:8:17:120", "percentage"),
        ] {
            let err = token.parse::<MobilitySpec>().unwrap_err();
            assert!(err.contains(needle), "{token:?}: {err}");
        }
    }
}
