//! Machine-readable run manifests: what `--metrics <path>` writes.
//!
//! A [`RunManifest`] captures one observed fleet run — provenance
//! (scenario name, source, scheme, seed, thread count), the recorder's
//! phase timings and counters, and the headline figures of every
//! report the run produced (one for a plain run, one per row for a
//! sweep). It is emitted through the [`DocWriter`] of
//! `tailwise-scenfile` and re-parses through the same crate's parser,
//! so downstream tooling needs nothing beyond this workspace.
//!
//! Schema (see `docs/OBSERVABILITY.md` for the key-by-key contract):
//!
//! ```toml
//! [run]       # provenance: name, scheme, source, seed, threads, runs, wall_seconds
//! [timings]   # synthesize_s / simulate_s / adjudicate_s / replay_s, worker_busy = [...]
//! [counters]  # every recorder counter, verbatim
//! [[report]]  # one per produced FleetReport: headline figures
//! ```

use std::collections::BTreeMap;

use tailwise_obs::Snapshot;
use tailwise_scenfile::{float_elements, parse, DocWriter, ScenError, Table};

use crate::report::{FleetReport, RunTimings};
use crate::sweep::SweepReport;

/// Headline figures of one produced [`FleetReport`], flattened for the
/// manifest's `[[report]]` rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestReport {
    /// Sweep-cell label (empty for a plain single run).
    pub label: String,
    /// Scenario display name.
    pub scenario: String,
    /// Scheme label under test.
    pub scheme: String,
    /// Users simulated.
    pub users: u64,
    /// Total user-days simulated.
    pub user_days: u64,
    /// Total packets pushed through the engine.
    pub packets: u64,
    /// Total energy under the scheme, J.
    pub energy_j: f64,
    /// Total energy under the status quo, J.
    pub baseline_energy_j: f64,
    /// Aggregate savings vs status quo, percent.
    pub saved_pct: f64,
    /// Switch cycles under the scheme.
    pub switches: u64,
    /// Switch cycles under the status quo.
    pub baseline_switches: u64,
    /// False switches (§6.3 FP).
    pub false_switches: u64,
    /// Missed switches (§6.3 FN).
    pub missed_switches: u64,
    /// Demotion decisions scored.
    pub decisions: u64,
    /// Wall-clock seconds of this run/row.
    pub wall_seconds: f64,
    /// Signaling figures, for cell-topology runs.
    pub signaling: Option<ManifestSignaling>,
}

/// Signaling-load figures of one cell-topology report row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSignaling {
    /// Fast-dormancy requests granted fleet-wide.
    pub granted: u64,
    /// Requests denied (by either level).
    pub denied: u64,
    /// Denials attributable to RNC-level admission.
    pub denied_by_rnc: u64,
    /// Peak cell messages in any one second.
    pub peak_messages_per_s: u64,
    /// Cell-seconds over the cell signaling budget.
    pub cell_overload_s: u64,
    /// RNC-seconds over the RNC signaling budget.
    pub rnc_overload_s: u64,
    /// Handoffs between cells (zero for static-mobility runs, and when
    /// reading manifests written before the mobility subsystem).
    pub handoffs: u64,
    /// Handoffs that crossed an RNC boundary.
    pub inter_rnc_handoffs: u64,
}

/// One observed run, ready to write to (or read back from) disk.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Scenario (or sweep) display name.
    pub name: String,
    /// Scheme label of the base scenario.
    pub scheme: String,
    /// Population provenance (synthetic, or the corpus description).
    pub source: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Worker threads the run was asked to use.
    pub threads: usize,
    /// Total wall-clock seconds across every run in the manifest.
    pub wall_seconds: f64,
    /// Phase breakdown summed over every run in the manifest.
    pub timings: RunTimings,
    /// Every recorder counter, verbatim (names are bare keys).
    pub counters: BTreeMap<String, u64>,
    /// Headline figures: one row per produced report.
    pub reports: Vec<ManifestReport>,
}

impl ManifestReport {
    fn from_report(label: &str, report: &FleetReport) -> ManifestReport {
        ManifestReport {
            label: label.to_string(),
            scenario: report.scenario.clone(),
            scheme: report.scheme.clone(),
            users: report.users,
            user_days: report.user_days,
            packets: report.packets,
            energy_j: report.energy_j,
            baseline_energy_j: report.baseline_energy_j,
            saved_pct: report.aggregate_savings_pct(),
            switches: report.switches,
            baseline_switches: report.baseline_switches,
            false_switches: report.false_switches,
            missed_switches: report.missed_switches,
            decisions: report.decisions,
            wall_seconds: report.wall_seconds,
            signaling: report.signaling.as_ref().map(|s| ManifestSignaling {
                granted: s.granted(),
                denied: s.denied(),
                denied_by_rnc: s.denied_by_rnc(),
                peak_messages_per_s: s.peak_messages_per_s(),
                cell_overload_s: s.overload_seconds(),
                rnc_overload_s: s.rnc_overload_seconds(),
                handoffs: s.handoffs(),
                inter_rnc_handoffs: s.inter_rnc_handoffs(),
            }),
        }
    }
}

impl RunManifest {
    /// Builds the manifest of a plain (non-sweep) run from its report
    /// and the recorder snapshot covering it.
    pub fn for_report(
        report: &FleetReport,
        threads: usize,
        seed: u64,
        snapshot: &Snapshot,
    ) -> RunManifest {
        RunManifest::build(
            report.scenario.clone(),
            report.scheme.clone(),
            report.source.clone(),
            seed,
            threads,
            vec![ManifestReport::from_report("", report)],
            snapshot,
        )
    }

    /// Builds the manifest of a sweep run: one `[[report]]` row per
    /// sweep cell, timings and counters cumulative over the whole
    /// sweep (each row additionally carries its own `wall_seconds`).
    pub fn for_sweep(
        sweep: &SweepReport,
        threads: usize,
        seed: u64,
        snapshot: &Snapshot,
    ) -> RunManifest {
        let (scheme, source) = sweep
            .rows
            .first()
            .map(|row| (row.report.scheme.clone(), row.report.source.clone()))
            .unwrap_or_default();
        let reports = sweep
            .rows
            .iter()
            .map(|row| ManifestReport::from_report(&row.label, &row.report))
            .collect();
        RunManifest::build(sweep.name.clone(), scheme, source, seed, threads, reports, snapshot)
    }

    fn build(
        name: String,
        scheme: String,
        source: String,
        seed: u64,
        threads: usize,
        reports: Vec<ManifestReport>,
        snapshot: &Snapshot,
    ) -> RunManifest {
        // The runner records one "run" span per run; its total is the
        // manifest's wall-clock. Fall back to the per-report walls for
        // snapshots that never saw the runner (defensive only).
        let mut wall_seconds = snapshot.span_seconds("run");
        if wall_seconds <= 0.0 {
            wall_seconds = reports.iter().map(|r| r.wall_seconds).sum();
        }
        RunManifest {
            name,
            scheme,
            source,
            seed,
            threads: threads.max(1),
            wall_seconds,
            timings: RunTimings::from_snapshot(snapshot, wall_seconds),
            counters: snapshot.counters.clone(),
            reports,
        }
    }

    /// Renders the manifest through the scenfile writer. The output
    /// re-parses losslessly via [`RunManifest::from_toml_str`].
    pub fn to_toml_string(&self) -> String {
        let mut w = DocWriter::new();
        w.comment("tailwise run manifest — written by `--metrics`, read by `fleet manifest`")
            .blank()
            .table("run")
            .str("name", &self.name)
            .str("scheme", &self.scheme)
            .str("source", &self.source)
            .uint("seed", self.seed)
            .uint("threads", self.threads as u64)
            .uint("runs", self.reports.len() as u64)
            .float("wall_seconds", self.wall_seconds);
        w.blank().table("timings");
        for (phase, seconds) in self.timings.phases() {
            w.float(&format!("{phase}_s"), seconds);
        }
        w.float_array("worker_busy", &self.timings.worker_busy);
        w.blank().table("counters");
        for (name, value) in &self.counters {
            w.uint(name, *value);
        }
        for report in &self.reports {
            w.blank()
                .array_table("report")
                .str("label", &report.label)
                .str("scenario", &report.scenario)
                .str("scheme", &report.scheme)
                .uint("users", report.users)
                .uint("user_days", report.user_days)
                .uint("packets", report.packets)
                .float("energy_j", report.energy_j)
                .float("baseline_energy_j", report.baseline_energy_j)
                .float("saved_pct", report.saved_pct)
                .uint("switches", report.switches)
                .uint("baseline_switches", report.baseline_switches)
                .uint("false_switches", report.false_switches)
                .uint("missed_switches", report.missed_switches)
                .uint("decisions", report.decisions)
                .float("wall_seconds", report.wall_seconds);
            if let Some(signaling) = &report.signaling {
                w.uint("granted", signaling.granted)
                    .uint("denied", signaling.denied)
                    .uint("denied_by_rnc", signaling.denied_by_rnc)
                    .uint("peak_messages_per_s", signaling.peak_messages_per_s)
                    .uint("cell_overload_s", signaling.cell_overload_s)
                    .uint("rnc_overload_s", signaling.rnc_overload_s)
                    .uint("handoffs", signaling.handoffs)
                    .uint("inter_rnc_handoffs", signaling.inter_rnc_handoffs);
            }
        }
        w.finish()
    }

    /// Writes the manifest to `path`.
    pub fn to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), ScenError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_toml_string()).map_err(|e| {
            ScenError::emit(format!("cannot write run manifest: {e}"))
                .with_origin(path.display().to_string())
        })
    }

    /// Parses a manifest document, strictly: unknown keys are
    /// positioned errors, exactly like scenario files.
    pub fn from_toml_str(src: &str) -> Result<RunManifest, ScenError> {
        let doc = parse(src)?;
        doc.deny_unknown(&[], &["run", "timings", "counters"], &["report"])?;

        let run = doc.table("run").ok_or_else(|| missing_table("run"))?;
        run.deny_unknown(
            &["name", "scheme", "source", "seed", "threads", "runs", "wall_seconds"],
            &[],
            &[],
        )?;
        let name = run.req_str("name")?.to_string();
        let scheme = run.req_str("scheme")?.to_string();
        let source = run.req_str("source")?.to_string();
        let seed = run.req_u64("seed")?;
        let threads = run.req_u64("threads")? as usize;
        let runs = run.req_u64("runs")?;
        let wall_seconds = run.req_float("wall_seconds")?;

        let timings_table = doc.table("timings").ok_or_else(|| missing_table("timings"))?;
        timings_table.deny_unknown(
            &["synthesize_s", "simulate_s", "adjudicate_s", "replay_s", "worker_busy"],
            &[],
            &[],
        )?;
        let timings = RunTimings {
            synthesize_s: timings_table.req_float("synthesize_s")?,
            simulate_s: timings_table.req_float("simulate_s")?,
            adjudicate_s: timings_table.req_float("adjudicate_s")?,
            replay_s: timings_table.req_float("replay_s")?,
            worker_busy: float_elements("worker_busy", timings_table.req_array("worker_busy")?)?,
        };

        let mut counters = BTreeMap::new();
        if let Some(table) = doc.table("counters") {
            for key in table.keys() {
                counters.insert(key.to_string(), table.req_u64(key)?);
            }
        }

        let mut reports = Vec::new();
        for row in doc.array_of_tables("report") {
            reports.push(parse_report_row(row)?);
        }
        if reports.len() as u64 != runs {
            return Err(ScenError::emit(format!(
                "manifest declares runs = {runs} but carries {} [[report]] row(s)",
                reports.len()
            )));
        }

        Ok(RunManifest {
            name,
            scheme,
            source,
            seed,
            threads,
            wall_seconds,
            timings,
            counters,
            reports,
        })
    }

    /// Reads and parses a manifest file.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<RunManifest, ScenError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| {
            ScenError::emit(format!("cannot read run manifest: {e}"))
                .with_origin(path.display().to_string())
        })?;
        RunManifest::from_toml_str(&text).map_err(|e| e.with_origin(path.display().to_string()))
    }

    /// One well-mixed word over the manifest's *deterministic* content:
    /// provenance (name, scheme, source, seed) and every `[[report]]`
    /// row's simulation figures. Measurement details — thread count,
    /// wall clocks, phase timings, recorder counters — are excluded,
    /// mirroring [`FleetReport`]'s `PartialEq`. Two runs of the same
    /// scenario digest equally at any thread count, observed or not,
    /// batch or streamed through the fleet service; `fleet manifest
    /// --digest` exposes this for shell-level comparisons.
    pub fn digest(&self) -> u64 {
        use tailwise_trace::mix::splitmix64;
        fn fold(h: u64, word: u64) -> u64 {
            splitmix64(h ^ word)
        }
        fn fold_bytes(mut h: u64, bytes: &[u8]) -> u64 {
            h = fold(h, bytes.len() as u64);
            for chunk in bytes.chunks(8) {
                let mut word = [0u8; 8];
                word[..chunk.len()].copy_from_slice(chunk);
                h = fold(h, u64::from_le_bytes(word));
            }
            h
        }
        let mut h = 0xD16E_0000_0000_0000u64;
        h = fold_bytes(h, self.name.as_bytes());
        h = fold_bytes(h, self.scheme.as_bytes());
        h = fold_bytes(h, self.source.as_bytes());
        h = fold(h, self.seed);
        h = fold(h, self.reports.len() as u64);
        for report in &self.reports {
            h = fold_bytes(h, report.label.as_bytes());
            h = fold_bytes(h, report.scenario.as_bytes());
            h = fold_bytes(h, report.scheme.as_bytes());
            for word in [
                report.users,
                report.user_days,
                report.packets,
                report.energy_j.to_bits(),
                report.baseline_energy_j.to_bits(),
                report.saved_pct.to_bits(),
                report.switches,
                report.baseline_switches,
                report.false_switches,
                report.missed_switches,
                report.decisions,
            ] {
                h = fold(h, word);
            }
            match &report.signaling {
                None => h = fold(h, 0),
                Some(s) => {
                    h = fold(h, 1);
                    for word in [
                        s.granted,
                        s.denied,
                        s.denied_by_rnc,
                        s.peak_messages_per_s,
                        s.cell_overload_s,
                        s.rnc_overload_s,
                        // Extending the digest is safe: digests are only
                        // compared between runs of the same binary.
                        s.handoffs,
                        s.inter_rnc_handoffs,
                    ] {
                        h = fold(h, word);
                    }
                }
            }
        }
        h
    }

    /// The phase timings that are missing or zero — empty for a
    /// manifest whose run recorded all four phases (what
    /// `fleet manifest --require-phases` enforces for topology runs).
    pub fn zero_phases(&self) -> Vec<&'static str> {
        self.timings
            .phases()
            .iter()
            .filter(|(_, seconds)| *seconds <= 0.0)
            .map(|(name, _)| *name)
            .collect()
    }
}

fn missing_table(name: &str) -> ScenError {
    ScenError::emit(format!("run manifest is missing its [{name}] table"))
}

fn parse_report_row(row: &Table) -> Result<ManifestReport, ScenError> {
    row.deny_unknown(
        &[
            "label",
            "scenario",
            "scheme",
            "users",
            "user_days",
            "packets",
            "energy_j",
            "baseline_energy_j",
            "saved_pct",
            "switches",
            "baseline_switches",
            "false_switches",
            "missed_switches",
            "decisions",
            "wall_seconds",
            "granted",
            "denied",
            "denied_by_rnc",
            "peak_messages_per_s",
            "cell_overload_s",
            "rnc_overload_s",
            "handoffs",
            "inter_rnc_handoffs",
        ],
        &[],
        &[],
    )?;
    let signaling = match row.get_u64("granted")? {
        Some(granted) => Some(ManifestSignaling {
            granted,
            denied: row.req_u64("denied")?,
            denied_by_rnc: row.req_u64("denied_by_rnc")?,
            peak_messages_per_s: row.req_u64("peak_messages_per_s")?,
            cell_overload_s: row.req_u64("cell_overload_s")?,
            rnc_overload_s: row.req_u64("rnc_overload_s")?,
            // Optional with default 0 so manifests written before the
            // mobility subsystem still parse.
            handoffs: row.get_u64("handoffs")?.unwrap_or(0),
            inter_rnc_handoffs: row.get_u64("inter_rnc_handoffs")?.unwrap_or(0),
        }),
        None => None,
    };
    Ok(ManifestReport {
        label: row.req_str("label")?.to_string(),
        scenario: row.req_str("scenario")?.to_string(),
        scheme: row.req_str("scheme")?.to_string(),
        users: row.req_u64("users")?,
        user_days: row.req_u64("user_days")?,
        packets: row.req_u64("packets")?,
        energy_j: row.req_float("energy_j")?,
        baseline_energy_j: row.req_float("baseline_energy_j")?,
        saved_pct: row.req_float("saved_pct")?,
        switches: row.req_u64("switches")?,
        baseline_switches: row.req_u64("baseline_switches")?,
        false_switches: row.req_u64("false_switches")?,
        missed_switches: row.req_u64("missed_switches")?,
        decisions: row.req_u64("decisions")?,
        wall_seconds: row.req_float("wall_seconds")?,
        signaling,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_obs::SpanStat;

    fn sample_snapshot() -> Snapshot {
        let mut s = Snapshot::empty();
        s.spans.insert("run".into(), SpanStat { count: 1, nanos: 2_000_000_000 });
        s.spans.insert("synthesize".into(), SpanStat { count: 4, nanos: 400_000_000 });
        s.spans.insert("simulate".into(), SpanStat { count: 4, nanos: 900_000_000 });
        s.counters.insert("users_simulated".into(), 4);
        s.workers = vec![1_900_000_000, 1_000_000_000];
        s
    }

    fn sample_report() -> FleetReport {
        let mut r = FleetReport::empty("manifest sample".into(), "makeidle".into());
        r.users = 4;
        r.user_days = 4;
        r.packets = 1000;
        r.energy_j = 10.0;
        r.baseline_energy_j = 20.0;
        r.wall_seconds = 2.0;
        r
    }

    #[test]
    fn manifest_round_trips_through_the_scenfile_parser() {
        let manifest = RunManifest::for_report(&sample_report(), 2, 77, &sample_snapshot());
        let text = manifest.to_toml_string();
        let parsed = RunManifest::from_toml_str(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n---\n{text}"));
        assert_eq!(parsed, manifest);
        assert_eq!(parsed.wall_seconds, 2.0);
        assert_eq!(parsed.timings.synthesize_s, 0.4);
        assert_eq!(parsed.timings.worker_busy, vec![0.95, 0.5]);
        assert_eq!(parsed.counters["users_simulated"], 4);
        assert_eq!(parsed.reports.len(), 1);
        assert_eq!(parsed.reports[0].saved_pct, 50.0);
        assert!(parsed.reports[0].signaling.is_none());
    }

    #[test]
    fn cache_counters_round_trip_through_the_manifest() {
        // The CI cache-smoke step greps these out of a reparsed
        // manifest, so their names must survive the TOML round trip
        // verbatim.
        let mut snapshot = sample_snapshot();
        snapshot.counters.insert("cache_hits".into(), 3);
        snapshot.counters.insert("cache_misses".into(), 1);
        snapshot.counters.insert("cache_spills".into(), 1);
        snapshot.counters.insert("cache_fallbacks".into(), 2);
        snapshot.counters.insert("corpus_walks".into(), 1);
        let manifest = RunManifest::for_report(&sample_report(), 2, 77, &snapshot);
        let parsed = RunManifest::from_toml_str(&manifest.to_toml_string()).unwrap();
        assert_eq!(parsed.counters["cache_hits"], 3);
        assert_eq!(parsed.counters["cache_misses"], 1);
        assert_eq!(parsed.counters["cache_spills"], 1);
        assert_eq!(parsed.counters["cache_fallbacks"], 2);
        assert_eq!(parsed.counters["corpus_walks"], 1);
        assert_eq!(parsed, manifest);
    }

    #[test]
    fn handoff_counters_round_trip_and_old_manifests_still_parse() {
        use crate::report::{CellLoad, FleetSignaling, RncLoad};
        let mut report = sample_report();
        report.signaling = Some(FleetSignaling {
            cell_capacity_per_s: Some(100),
            rnc_capacity_per_s: Some(500),
            cells: vec![CellLoad {
                users: 4,
                granted: 7,
                handoffs_in: 9,
                handoffs_out: 9,
                ..CellLoad::default()
            }],
            rncs: vec![RncLoad { cells: 1, users: 4, inter_rnc_handoffs: 3, ..RncLoad::default() }],
        });
        let manifest = RunManifest::for_report(&report, 2, 77, &sample_snapshot());
        let text = manifest.to_toml_string();
        // The CI handoff smoke greps these keys out of the rendered
        // manifest, so the writer must emit them verbatim.
        assert!(text.contains("handoffs = 9"), "{text}");
        assert!(text.contains("inter_rnc_handoffs = 3"), "{text}");
        let parsed = RunManifest::from_toml_str(&text).unwrap();
        assert_eq!(parsed, manifest);
        let signaling = parsed.reports[0].signaling.as_ref().unwrap();
        assert_eq!((signaling.handoffs, signaling.inter_rnc_handoffs), (9, 3));

        // Pre-mobility manifests carry no handoff keys; they parse with
        // zero counts (and digest differently from the mobile run).
        let old = text
            .lines()
            .filter(|l| !l.starts_with("handoffs") && !l.starts_with("inter_rnc_handoffs"))
            .collect::<Vec<_>>()
            .join("\n");
        let parsed_old = RunManifest::from_toml_str(&old).unwrap();
        let signaling = parsed_old.reports[0].signaling.as_ref().unwrap();
        assert_eq!((signaling.handoffs, signaling.inter_rnc_handoffs), (0, 0));
        assert_ne!(parsed_old.digest(), manifest.digest());
    }

    #[test]
    fn zero_phases_names_the_silent_ones() {
        let manifest = RunManifest::for_report(&sample_report(), 2, 77, &sample_snapshot());
        assert_eq!(manifest.zero_phases(), vec!["adjudicate", "replay"]);
    }

    #[test]
    fn unknown_manifest_keys_are_positioned_errors() {
        let manifest = RunManifest::for_report(&sample_report(), 1, 0, &sample_snapshot());
        let text = manifest.to_toml_string().replace("seed = 0", "sede = 0");
        let err = RunManifest::from_toml_str(&text).unwrap_err();
        assert!(err.message.contains("unknown key `sede`"), "{err}");
    }

    #[test]
    fn run_count_mismatch_is_an_error() {
        let manifest = RunManifest::for_report(&sample_report(), 1, 0, &sample_snapshot());
        let text = manifest.to_toml_string().replace("runs = 1", "runs = 3");
        let err = RunManifest::from_toml_str(&text).unwrap_err();
        assert!(err.message.contains("runs = 3"), "{err}");
    }

    #[test]
    fn digest_ignores_measurement_but_not_simulation() {
        let base = RunManifest::for_report(&sample_report(), 2, 77, &sample_snapshot());

        // Measurement details: different thread count, wall clock,
        // timings, and counters must digest identically.
        let mut remeasured = RunManifest::for_report(&sample_report(), 8, 77, &Snapshot::empty());
        remeasured.wall_seconds = 123.0;
        for row in &mut remeasured.reports {
            row.wall_seconds = 9.9;
        }
        assert_eq!(remeasured.digest(), base.digest());

        // Simulation content: any figure change must change the digest.
        let mut report = sample_report();
        report.energy_j += 1e-9;
        let redone = RunManifest::for_report(&report, 2, 77, &sample_snapshot());
        assert_ne!(redone.digest(), base.digest());

        let reseeded = RunManifest::for_report(&sample_report(), 2, 78, &sample_snapshot());
        assert_ne!(reseeded.digest(), base.digest());
    }

    #[test]
    fn file_round_trip_and_missing_file_error() {
        let path =
            std::env::temp_dir().join(format!("tailwise-manifest-{}.toml", std::process::id()));
        let manifest = RunManifest::for_report(&sample_report(), 2, 9, &sample_snapshot());
        manifest.to_file(&path).unwrap();
        assert_eq!(RunManifest::from_file(&path).unwrap(), manifest);
        std::fs::remove_file(&path).unwrap();
        let err = RunManifest::from_file(&path).unwrap_err();
        assert!(err.message.contains("cannot read run manifest"), "{err}");
    }
}
