//! Population-scale run outcomes.
//!
//! A [`FleetReport`] is the streaming fold of per-user
//! [`SimReport`]s: totals, a
//! savings-distribution histogram, and decision-quality counts. Folds
//! happen per shard in user order, and shard partials merge in shard
//! order — so the report is a deterministic function of the scenario,
//! independent of how many threads produced it. Wall-clock fields are
//! measured, not derived, and are excluded from equality.

use tailwise_sim::report::SimReport;

use crate::histogram::Histogram;

/// Aggregate outcome of one fleet run (or one shard of it).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Scenario display name.
    pub scenario: String,
    /// Scheme label under test.
    pub scheme: String,
    /// Provenance of the population: `"synthetic population"` for
    /// scenario-synthesized users, or a corpus description naming the
    /// directory and trace-file count. Deterministic (part of equality).
    pub source: String,
    /// Users simulated.
    pub users: u64,
    /// Total user-days simulated.
    pub user_days: u64,
    /// Total packets pushed through the engine (scheme run).
    pub packets: u64,
    /// Total energy under the scheme, J.
    pub energy_j: f64,
    /// Total energy under the status quo, J.
    pub baseline_energy_j: f64,
    /// Total demote→promote switch cycles under the scheme.
    pub switches: u64,
    /// Switch cycles under the status quo.
    pub baseline_switches: u64,
    /// False switches (§6.3 FP) summed over users.
    pub false_switches: u64,
    /// Missed switches (§6.3 FN) summed over users.
    pub missed_switches: u64,
    /// Total demotion decisions scored.
    pub decisions: u64,
    /// Per-user savings-vs-status-quo distribution, percent.
    pub savings: Histogram,
    /// Wall-clock seconds the run took (0 for unmerged partials;
    /// excluded from equality).
    pub wall_seconds: f64,
    /// Threads the run used (execution detail; excluded from equality).
    pub threads: usize,
}

impl FleetReport {
    /// An empty report shell for streaming folds.
    pub fn empty(scenario: String, scheme: String) -> FleetReport {
        FleetReport {
            scenario,
            scheme,
            source: "synthetic population".into(),
            users: 0,
            user_days: 0,
            packets: 0,
            energy_j: 0.0,
            baseline_energy_j: 0.0,
            switches: 0,
            baseline_switches: 0,
            false_switches: 0,
            missed_switches: 0,
            decisions: 0,
            savings: Histogram::savings_percent(),
            wall_seconds: 0.0,
            threads: 1,
        }
    }

    /// Folds one user's pair of runs (scheme, status-quo baseline) into
    /// the aggregate.
    pub fn fold_user(&mut self, days: u32, scheme_run: &SimReport, baseline: &SimReport) {
        self.users += 1;
        self.user_days += days as u64;
        self.packets += scheme_run.packets as u64;
        self.energy_j += scheme_run.total_energy();
        self.baseline_energy_j += baseline.total_energy();
        self.switches += scheme_run.switch_cycles();
        self.baseline_switches += baseline.switch_cycles();
        self.false_switches += scheme_run.confusion.fp;
        self.missed_switches += scheme_run.confusion.fn_;
        self.decisions += scheme_run.confusion.total();
        self.savings.record(scheme_run.savings_vs(baseline));
    }

    /// Appends another partial (typically the next shard, in shard
    /// order).
    pub fn merge(&mut self, other: &FleetReport) {
        self.users += other.users;
        self.user_days += other.user_days;
        self.packets += other.packets;
        self.energy_j += other.energy_j;
        self.baseline_energy_j += other.baseline_energy_j;
        self.switches += other.switches;
        self.baseline_switches += other.baseline_switches;
        self.false_switches += other.false_switches;
        self.missed_switches += other.missed_switches;
        self.decisions += other.decisions;
        self.savings.merge(&other.savings);
    }

    /// Population-level savings: joules saved over the whole fleet as a
    /// percentage of the status-quo total (energy-weighted, so heavy
    /// users count more than in the per-user mean).
    pub fn aggregate_savings_pct(&self) -> f64 {
        if self.baseline_energy_j <= 0.0 {
            return 0.0;
        }
        (self.baseline_energy_j - self.energy_j) / self.baseline_energy_j * 100.0
    }

    /// Mean of the per-user savings percentages.
    pub fn mean_user_savings_pct(&self) -> f64 {
        self.savings.mean()
    }

    /// Mean energy per user-day, J.
    pub fn mean_energy_per_user_day(&self) -> f64 {
        if self.user_days == 0 {
            return 0.0;
        }
        self.energy_j / self.user_days as f64
    }

    /// Switches relative to status quo (1.0 = parity).
    pub fn normalized_switches(&self) -> f64 {
        if self.baseline_switches == 0 {
            return if self.switches == 0 { 1.0 } else { f64::INFINITY };
        }
        self.switches as f64 / self.baseline_switches as f64
    }

    /// Simulation throughput in user-days per wall-clock second.
    pub fn user_days_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.user_days as f64 / self.wall_seconds
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = |q: f64| {
            self.savings.percentile(q).map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!("fleet    : {}\n", self.scenario));
        out.push_str(&format!("source   : {}\n", self.source));
        out.push_str(&format!(
            "population: {} users, {} user-days, {} packets\n",
            self.users, self.user_days, self.packets
        ));
        out.push_str(&format!(
            "energy   : {:.1} J under {} vs {:.1} J status quo — {:.1}% saved in aggregate\n",
            self.energy_j,
            self.scheme,
            self.baseline_energy_j,
            self.aggregate_savings_pct()
        ));
        out.push_str(&format!(
            "per user : savings mean {:.1}%  p5 {}  p25 {}  p50 {}  p75 {}  p95 {}\n",
            self.mean_user_savings_pct(),
            pct(0.05),
            pct(0.25),
            pct(0.50),
            pct(0.75),
            pct(0.95)
        ));
        out.push_str(&format!(
            "switches : {} vs {} status quo ({:.2}× normalized)\n",
            self.switches,
            self.baseline_switches,
            self.normalized_switches()
        ));
        out.push_str(&format!(
            "decisions: {} scored — {} false switches, {} missed switches\n",
            self.decisions, self.false_switches, self.missed_switches
        ));
        if self.wall_seconds > 0.0 {
            out.push_str(&format!(
                "speed    : {:.2} s wall on {} thread(s) — {:.1} user-days/sec\n",
                self.wall_seconds,
                self.threads,
                self.user_days_per_sec()
            ));
        }
        out
    }
}

// Equality covers only the deterministic aggregate — wall-clock and
// thread count are measurement details. This is the comparison the
// thread-count invariance guarantee is stated in terms of: every f64 is
// compared exactly, not within a tolerance.
impl PartialEq for FleetReport {
    fn eq(&self, other: &FleetReport) -> bool {
        self.scenario == other.scenario
            && self.scheme == other.scheme
            && self.source == other.source
            && self.users == other.users
            && self.user_days == other.user_days
            && self.packets == other.packets
            && self.energy_j.to_bits() == other.energy_j.to_bits()
            && self.baseline_energy_j.to_bits() == other.baseline_energy_j.to_bits()
            && self.switches == other.switches
            && self.baseline_switches == other.baseline_switches
            && self.false_switches == other.false_switches
            && self.missed_switches == other.missed_switches
            && self.decisions == other.decisions
            && self.savings == other.savings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_report(energy: f64, promotions: u64, packets: usize) -> SimReport {
        let mut r = SimReport::new("s".into(), "c".into());
        r.energy.tail_dch = energy;
        r.counters.promotions = promotions;
        r.packets = packets;
        r
    }

    #[test]
    fn fold_accumulates_and_savings_distribute() {
        let mut f = FleetReport::empty("test".into(), "MakeIdle".into());
        let base = sim_report(100.0, 10, 500);
        f.fold_user(1, &sim_report(40.0, 15, 500), &base);
        f.fold_user(2, &sim_report(80.0, 12, 700), &base);
        assert_eq!(f.users, 2);
        assert_eq!(f.user_days, 3);
        assert_eq!(f.packets, 1200);
        assert_eq!(f.switches, 27);
        assert_eq!(f.baseline_switches, 20);
        assert!((f.energy_j - 120.0).abs() < 1e-12);
        assert!((f.aggregate_savings_pct() - 40.0).abs() < 1e-12);
        assert!((f.mean_user_savings_pct() - 40.0).abs() < 1e-12);
        assert_eq!(f.savings.count(), 2);
    }

    #[test]
    fn merge_matches_sequential_fold() {
        // Merging shard partials must agree with a sequential fold on
        // every count exactly; the float totals agree to tolerance (the
        // reduction *tree* differs, which is precisely why shard size is
        // part of the scenario identity while thread count is not).
        let base = sim_report(90.0, 9, 300);
        let runs: Vec<SimReport> =
            (0..10).map(|i| sim_report(30.0 + i as f64 * 5.0, 8 + i, 300)).collect();
        let mut whole = FleetReport::empty("x".into(), "s".into());
        for r in &runs {
            whole.fold_user(1, r, &base);
        }
        let mut a = FleetReport::empty("x".into(), "s".into());
        let mut b = FleetReport::empty("x".into(), "s".into());
        for (i, r) in runs.iter().enumerate() {
            if i < 5 { &mut a } else { &mut b }.fold_user(1, r, &base);
        }
        a.merge(&b);
        assert_eq!(a.users, whole.users);
        assert_eq!(a.user_days, whole.user_days);
        assert_eq!(a.packets, whole.packets);
        assert_eq!(a.switches, whole.switches);
        assert_eq!(a.baseline_switches, whole.baseline_switches);
        assert_eq!(a.savings.bins(), whole.savings.bins());
        assert_eq!(a.savings.min(), whole.savings.min());
        assert_eq!(a.savings.max(), whole.savings.max());
        assert!((a.energy_j - whole.energy_j).abs() < 1e-9);
        assert!((a.baseline_energy_j - whole.baseline_energy_j).abs() < 1e-9);
        assert!((a.mean_user_savings_pct() - whole.mean_user_savings_pct()).abs() < 1e-9);
    }

    #[test]
    fn identical_merge_trees_are_bit_identical() {
        // The guarantee the runner actually relies on: the same shard
        // partition merged twice gives the same bits.
        let base = sim_report(90.0, 9, 300);
        let runs: Vec<SimReport> =
            (0..10).map(|i| sim_report(30.0 + i as f64 * 5.0, 8 + i, 300)).collect();
        let build = || {
            let mut shards: Vec<FleetReport> = Vec::new();
            for chunk in runs.chunks(3) {
                let mut s = FleetReport::empty("x".into(), "s".into());
                for r in chunk {
                    s.fold_user(1, r, &base);
                }
                shards.push(s);
            }
            let mut total = FleetReport::empty("x".into(), "s".into());
            for s in &shards {
                total.merge(s);
            }
            total
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mut a = FleetReport::empty("x".into(), "s".into());
        let mut b = a.clone();
        b.wall_seconds = 9.0;
        b.threads = 8;
        assert_eq!(a, b);
        a.users = 1;
        assert_ne!(a, b);
        // Provenance, by contrast, is part of the deterministic identity.
        a.users = 0;
        a.source = "corpus ./elsewhere (3 traces)".into();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_population_edge_cases() {
        let f = FleetReport::empty("x".into(), "s".into());
        assert_eq!(f.aggregate_savings_pct(), 0.0);
        assert_eq!(f.mean_energy_per_user_day(), 0.0);
        assert_eq!(f.normalized_switches(), 1.0);
        assert_eq!(f.user_days_per_sec(), 0.0);
        assert!(f.render().contains("0 users"));
    }
}
