//! Population-scale run outcomes.
//!
//! A [`FleetReport`] is the streaming fold of per-user
//! [`SimReport`]s: totals, a
//! savings-distribution histogram, session-delay percentiles, and
//! decision-quality counts — plus, for cell-topology runs, the
//! per-cell signaling load ([`FleetSignaling`]). Folds happen per shard
//! in user order, and shard partials merge in shard order — so the
//! report is a deterministic function of the scenario, independent of
//! how many threads produced it. Wall-clock fields are measured, not
//! derived, and are excluded from equality.

use tailwise_sim::report::SimReport;
use tailwise_sim::ReplayOutcome;

use crate::histogram::Histogram;

/// Signaling load one cell absorbed over a fleet run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellLoad {
    /// Users assigned to the cell.
    pub users: u64,
    /// Fast-dormancy requests the cell granted.
    pub granted: u64,
    /// Fast-dormancy requests the cell denied.
    pub denied: u64,
    /// Total RRC messages absorbed (per the run's
    /// [`SignalingModel`](tailwise_radio::signaling::SignalingModel)).
    pub total_messages: u64,
    /// Peak RRC messages in any one-second window.
    pub peak_messages_per_s: u64,
    /// Seconds in which the message load exceeded the configured
    /// capacity (zero when no capacity was set).
    pub overload_seconds: u64,
    /// Handoffs that entered the cell (users arriving). Nonzero only
    /// under a mobile [`MobilitySpec`](crate::mobility::MobilitySpec);
    /// each side of a handoff charges its own cell's message load.
    pub handoffs_in: u64,
    /// Handoffs that left the cell (users departing).
    pub handoffs_out: u64,
}

/// Signaling load one RNC absorbed over a fleet run: the summed load of
/// its contiguous block of member cells, plus the denials the RNC
/// itself issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RncLoad {
    /// Member cells under this RNC.
    pub cells: u64,
    /// Users across the member cells.
    pub users: u64,
    /// Fast-dormancy requests granted (sum over member cells).
    pub granted: u64,
    /// Fast-dormancy requests denied at either level (sum over member
    /// cells).
    pub denied: u64,
    /// Denials attributable to the RNC itself: the cell forwarded the
    /// request, the RNC refused it.
    pub denied_by_rnc: u64,
    /// Total RRC messages across the member cells.
    pub total_messages: u64,
    /// Peak RRC messages the RNC absorbed in any one-second window
    /// (member-cell loads summed per second — **not** the max of the
    /// cells' peaks).
    pub peak_messages_per_s: u64,
    /// Seconds in which the RNC's summed message load exceeded the
    /// configured RNC capacity (zero when no capacity was set).
    pub overload_seconds: u64,
    /// Handoffs that crossed out of this RNC into another (attributed
    /// to the source RNC, like `denied_by_rnc` is attributed where the
    /// decision happened). These charge the RNC's own message load on
    /// top of the member cells'.
    pub inter_rnc_handoffs: u64,
}

/// The network-side outcome of a topology fleet run: one [`CellLoad`]
/// per cell and one [`RncLoad`] per RNC, each in index order. Attached
/// to the final [`FleetReport`] by the two-pass topology runner (shard
/// partials carry `None`), and part of the report's deterministic
/// identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetSignaling {
    /// RRC-message capacity each cell can absorb per second (`None` =
    /// unbounded; cell overload seconds are then always zero).
    pub cell_capacity_per_s: Option<u64>,
    /// RRC-message capacity each RNC can absorb per second, against the
    /// summed load of its member cells (`None` = unbounded).
    pub rnc_capacity_per_s: Option<u64>,
    /// Per-cell loads, indexed by cell.
    pub cells: Vec<CellLoad>,
    /// Per-RNC loads, indexed by RNC (cells map to RNCs in contiguous
    /// blocks — see [`rnc_of_cell`](crate::topology::rnc_of_cell)).
    pub rncs: Vec<RncLoad>,
}

impl FleetSignaling {
    /// Requests granted across every cell.
    pub fn granted(&self) -> u64 {
        self.cells.iter().map(|c| c.granted).sum()
    }

    /// Requests denied across every cell.
    pub fn denied(&self) -> u64 {
        self.cells.iter().map(|c| c.denied).sum()
    }

    /// Total RRC messages across every cell.
    pub fn total_messages(&self) -> u64 {
        self.cells.iter().map(|c| c.total_messages).sum()
    }

    /// The worst single-cell one-second peak.
    pub fn peak_messages_per_s(&self) -> u64 {
        self.cells.iter().map(|c| c.peak_messages_per_s).max().unwrap_or(0)
    }

    /// Overloaded seconds summed over cells.
    pub fn overload_seconds(&self) -> u64 {
        self.cells.iter().map(|c| c.overload_seconds).sum()
    }

    /// Number of cells that spent at least one second over capacity.
    pub fn overloaded_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.overload_seconds > 0).count()
    }

    /// Denials the RNC level itself issued (cell forwarded, RNC
    /// refused), summed over RNCs.
    pub fn denied_by_rnc(&self) -> u64 {
        self.rncs.iter().map(|r| r.denied_by_rnc).sum()
    }

    /// The worst single-RNC one-second peak (member cells summed per
    /// second).
    pub fn rnc_peak_messages_per_s(&self) -> u64 {
        self.rncs.iter().map(|r| r.peak_messages_per_s).max().unwrap_or(0)
    }

    /// RNC overloaded seconds summed over RNCs.
    pub fn rnc_overload_seconds(&self) -> u64 {
        self.rncs.iter().map(|r| r.overload_seconds).sum()
    }

    /// Number of RNCs that spent at least one second over capacity.
    pub fn overloaded_rncs(&self) -> usize {
        self.rncs.iter().filter(|r| r.overload_seconds > 0).count()
    }

    /// Total handoffs across the run. Handoffs are conserved — every
    /// one has exactly one in-side — so the in-sides count them.
    pub fn handoffs(&self) -> u64 {
        self.cells.iter().map(|c| c.handoffs_in).sum()
    }

    /// Handoffs that crossed an RNC boundary, summed over RNCs.
    pub fn inter_rnc_handoffs(&self) -> u64 {
        self.rncs.iter().map(|r| r.inter_rnc_handoffs).sum()
    }
}

/// Where a run's wall-clock went, phase by phase.
///
/// Phase seconds are summed across worker threads, so on parallel runs
/// they can exceed `wall_seconds` — they answer "where did the work
/// go", not "how long did you wait". Built from a recorder
/// [`Snapshot`](tailwise_obs::Snapshot) and, like `wall_seconds`,
/// measured rather than simulated: excluded from report equality and
/// rendered only when positive.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTimings {
    /// Seconds materializing users: synthetic trace generation or
    /// corpus trace loading (summed across both topology passes).
    pub synthesize_s: f64,
    /// Seconds simulating: per-user engine folds plus the pass-1
    /// request-extraction scan of topology runs.
    pub simulate_s: f64,
    /// Seconds adjudicating admission at cells and RNCs (topology runs
    /// only; 0.0 for radio-isolated runs).
    pub adjudicate_s: f64,
    /// Seconds in the exact scripted pass-2 replay (topology runs
    /// only; 0.0 for radio-isolated runs).
    pub replay_s: f64,
    /// Busy fraction per worker thread: the share of the run's
    /// wall-clock each worker spent executing shards.
    pub worker_busy: Vec<f64>,
}

impl RunTimings {
    /// Extracts the phase breakdown from a recorder snapshot (usually a
    /// [`since`](tailwise_obs::Snapshot::since) delta covering exactly
    /// one run) against the run's wall-clock seconds.
    pub fn from_snapshot(snapshot: &tailwise_obs::Snapshot, wall_seconds: f64) -> RunTimings {
        let worker_busy = if wall_seconds > 0.0 {
            snapshot.workers.iter().map(|nanos| (*nanos as f64 / 1e9) / wall_seconds).collect()
        } else {
            Vec::new()
        };
        RunTimings {
            synthesize_s: snapshot.span_seconds("synthesize"),
            simulate_s: snapshot.span_seconds("simulate"),
            adjudicate_s: snapshot.span_seconds("adjudicate"),
            replay_s: snapshot.span_seconds("replay"),
            worker_busy,
        }
    }

    /// True when at least one phase recorded time — the render gate.
    pub fn any_positive(&self) -> bool {
        self.synthesize_s > 0.0
            || self.simulate_s > 0.0
            || self.adjudicate_s > 0.0
            || self.replay_s > 0.0
    }

    /// `(name, seconds)` for each of the four phases, in pipeline
    /// order. The manifest writer and the render share this list.
    pub fn phases(&self) -> [(&'static str, f64); 4] {
        [
            ("synthesize", self.synthesize_s),
            ("simulate", self.simulate_s),
            ("adjudicate", self.adjudicate_s),
            ("replay", self.replay_s),
        ]
    }
}

/// Aggregate outcome of one fleet run (or one shard of it).
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Scenario display name.
    pub scenario: String,
    /// Scheme label under test.
    pub scheme: String,
    /// Provenance of the population: `"synthetic population"` for
    /// scenario-synthesized users, or a corpus description naming the
    /// directory and trace-file count. Deterministic (part of equality).
    pub source: String,
    /// Users simulated.
    pub users: u64,
    /// Total user-days simulated.
    pub user_days: u64,
    /// Total packets pushed through the engine (scheme run).
    pub packets: u64,
    /// Total energy under the scheme, J.
    pub energy_j: f64,
    /// Total energy under the status quo, J.
    pub baseline_energy_j: f64,
    /// Total demote→promote switch cycles under the scheme.
    pub switches: u64,
    /// Switch cycles under the status quo.
    pub baseline_switches: u64,
    /// False switches (§6.3 FP) summed over users.
    pub false_switches: u64,
    /// Missed switches (§6.3 FN) summed over users.
    pub missed_switches: u64,
    /// Total demotion decisions scored.
    pub decisions: u64,
    /// Per-user savings-vs-status-quo distribution, percent.
    pub savings: Histogram,
    /// Population distribution of MakeActive session delays, seconds
    /// (one sample per delayed session; empty unless the scheme
    /// batches).
    pub session_delays: Histogram,
    /// Per-cell signaling load, for cell-topology runs (`None` for
    /// radio-isolated runs and unmerged shard partials).
    pub signaling: Option<FleetSignaling>,
    /// Wall-clock seconds the run took (0 for unmerged partials;
    /// excluded from equality).
    pub wall_seconds: f64,
    /// Threads the run used (execution detail; excluded from equality).
    pub threads: usize,
    /// Phase breakdown when the run was observed by an enabled
    /// recorder (`None` otherwise; measurement detail, excluded from
    /// equality like `wall_seconds`).
    pub timings: Option<RunTimings>,
}

impl FleetReport {
    /// An empty report shell for streaming folds.
    pub fn empty(scenario: String, scheme: String) -> FleetReport {
        FleetReport {
            scenario,
            scheme,
            source: "synthetic population".into(),
            users: 0,
            user_days: 0,
            packets: 0,
            energy_j: 0.0,
            baseline_energy_j: 0.0,
            switches: 0,
            baseline_switches: 0,
            false_switches: 0,
            missed_switches: 0,
            decisions: 0,
            savings: Histogram::savings_percent(),
            session_delays: Histogram::session_delay_seconds(),
            signaling: None,
            wall_seconds: 0.0,
            threads: 1,
            timings: None,
        }
    }

    /// Folds one user's pair of runs (scheme, status-quo baseline) into
    /// the aggregate.
    pub fn fold_user(&mut self, days: u32, scheme_run: &SimReport, baseline: &SimReport) {
        self.fold_user_baseline(
            days,
            scheme_run,
            baseline.total_energy(),
            baseline.switch_cycles(),
        );
    }

    /// [`fold_user`](Self::fold_user) against a pre-computed baseline
    /// summary — the two numbers the fold actually consumes from the
    /// status-quo run. A cached baseline folded through here produces
    /// the same report bit for bit as re-running the status quo, which
    /// is what lets the fleet cache skip baseline recomputation on warm
    /// sweep cells.
    pub fn fold_user_baseline(
        &mut self,
        days: u32,
        scheme_run: &SimReport,
        baseline_energy_j: f64,
        baseline_switches: u64,
    ) {
        // Delegating through the memoizable outcome form is what makes
        // the replay memo bit-identical *by construction*: a live run
        // and a cached [`ReplayOutcome`] fold through literally the
        // same arithmetic, with every float round-tripped losslessly
        // through `to_bits`/`from_bits`.
        self.fold_user_outcome(
            days,
            &ReplayOutcome::of(scheme_run),
            baseline_energy_j,
            baseline_switches,
        );
    }

    /// [`fold_user_baseline`](Self::fold_user_baseline) against a
    /// memoized [`ReplayOutcome`] instead of a live [`SimReport`] —
    /// the fold the verdict-memoized replay cache uses for users whose
    /// grant/deny stream it has seen before. The live fold delegates
    /// through here, so cached and recomputed users are aggregated by
    /// the same code path, bit for bit.
    pub fn fold_user_outcome(
        &mut self,
        days: u32,
        outcome: &ReplayOutcome,
        baseline_energy_j: f64,
        baseline_switches: u64,
    ) {
        self.users += 1;
        self.user_days += days as u64;
        self.packets += outcome.packets;
        self.energy_j += outcome.energy_j();
        self.baseline_energy_j += baseline_energy_j;
        self.switches += outcome.switches;
        self.baseline_switches += baseline_switches;
        self.false_switches += outcome.false_switches;
        self.missed_switches += outcome.missed_switches;
        self.decisions += outcome.decisions;
        self.savings.record(outcome.savings_vs_energy(baseline_energy_j));
        for delay in outcome.session_delays() {
            self.session_delays.record(delay);
        }
    }

    /// Appends another partial (typically the next shard, in shard
    /// order).
    ///
    /// # Panics
    /// If both reports carry [`FleetSignaling`] (see the comment on the
    /// signaling arm) or their histograms have mismatched shapes.
    pub fn merge(&mut self, other: &FleetReport) {
        self.users += other.users;
        self.user_days += other.user_days;
        self.packets += other.packets;
        self.energy_j += other.energy_j;
        self.baseline_energy_j += other.baseline_energy_j;
        self.switches += other.switches;
        self.baseline_switches += other.baseline_switches;
        self.false_switches += other.false_switches;
        self.missed_switches += other.missed_switches;
        self.decisions += other.decisions;
        self.savings.merge(&other.savings);
        self.session_delays.merge(&other.session_delays);
        // Signaling is attached once, by the cell runner, after the
        // final shard merge — partials never carry it. Adopting a lone
        // Some keeps that flow working; two Somes have no well-defined
        // sum (the per-second data behind peak/overload is gone), so —
        // like a histogram shape mismatch — that is a loud error, never
        // a silently inconsistent aggregate.
        match (&self.signaling, &other.signaling) {
            (Some(_), Some(_)) => panic!(
                "cannot merge two fleet reports that both carry cell signaling; \
                 per-cell loads are attached once, after the final shard merge"
            ),
            (None, Some(signaling)) => self.signaling = Some(signaling.clone()),
            _ => {}
        }
    }

    /// Population-level savings: joules saved over the whole fleet as a
    /// percentage of the status-quo total (energy-weighted, so heavy
    /// users count more than in the per-user mean).
    pub fn aggregate_savings_pct(&self) -> f64 {
        if self.baseline_energy_j <= 0.0 {
            return 0.0;
        }
        (self.baseline_energy_j - self.energy_j) / self.baseline_energy_j * 100.0
    }

    /// Mean of the per-user savings percentages.
    pub fn mean_user_savings_pct(&self) -> f64 {
        self.savings.mean()
    }

    /// Mean energy per user-day, J.
    pub fn mean_energy_per_user_day(&self) -> f64 {
        if self.user_days == 0 {
            return 0.0;
        }
        self.energy_j / self.user_days as f64
    }

    /// Switches relative to status quo (1.0 = parity).
    pub fn normalized_switches(&self) -> f64 {
        if self.baseline_switches == 0 {
            return if self.switches == 0 { 1.0 } else { f64::INFINITY };
        }
        self.switches as f64 / self.baseline_switches as f64
    }

    /// Simulation throughput in user-days per wall-clock second.
    pub fn user_days_per_sec(&self) -> f64 {
        if self.wall_seconds <= 0.0 {
            return 0.0;
        }
        self.user_days as f64 / self.wall_seconds
    }

    /// Population `q`-quantile of the MakeActive session delays, seconds
    /// (`None` when no session was ever delayed — non-batching schemes).
    pub fn session_delay_percentile(&self, q: f64) -> Option<f64> {
        self.session_delays.percentile(q)
    }

    /// Multi-line human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let pct = |q: f64| {
            self.savings.percentile(q).map(|v| format!("{v:.1}")).unwrap_or_else(|| "-".into())
        };
        out.push_str(&format!("fleet    : {}\n", self.scenario));
        out.push_str(&format!("source   : {}\n", self.source));
        out.push_str(&format!(
            "population: {} users, {} user-days, {} packets\n",
            self.users, self.user_days, self.packets
        ));
        out.push_str(&format!(
            "energy   : {:.1} J under {} vs {:.1} J status quo — {:.1}% saved in aggregate\n",
            self.energy_j,
            self.scheme,
            self.baseline_energy_j,
            self.aggregate_savings_pct()
        ));
        out.push_str(&format!(
            "per user : savings mean {:.1}%  p5 {}  p25 {}  p50 {}  p75 {}  p95 {}\n",
            self.mean_user_savings_pct(),
            pct(0.05),
            pct(0.25),
            pct(0.50),
            pct(0.75),
            pct(0.95)
        ));
        out.push_str(&format!(
            "switches : {} vs {} status quo ({:.2}× normalized)\n",
            self.switches,
            self.baseline_switches,
            self.normalized_switches()
        ));
        out.push_str(&format!(
            "decisions: {} scored — {} false switches, {} missed switches\n",
            self.decisions, self.false_switches, self.missed_switches
        ));
        if self.session_delays.count() > 0 {
            let dpct = |q: f64| {
                self.session_delays
                    .percentile(q)
                    .map(|v| format!("{v:.2}"))
                    .unwrap_or_else(|| "-".into())
            };
            out.push_str(&format!(
                "delays   : {} sessions held by MakeActive — added delay p50 {} s  p95 {} s  \
                 p99 {} s (max {:.2} s)\n",
                self.session_delays.count(),
                dpct(0.50),
                dpct(0.95),
                dpct(0.99),
                self.session_delays.max().unwrap_or(0.0),
            ));
        }
        if let Some(signaling) = &self.signaling {
            let capacity = |cap: Option<u64>| match cap {
                Some(cap) => format!("{cap} msg/s capacity"),
                None => "unbounded capacity".into(),
            };
            out.push_str(&format!(
                "network  : {} RNC(s) over {} cell(s) — {} FD requests granted, {} denied \
                 ({} at the RNC level)\n",
                signaling.rncs.len(),
                signaling.cells.len(),
                signaling.granted(),
                signaling.denied(),
                signaling.denied_by_rnc(),
            ));
            out.push_str(&format!(
                "cell load: {}, {} RRC messages total, worst per-cell peak {} msg/s, \
                 {} overload second(s) across {} cell(s)\n",
                capacity(signaling.cell_capacity_per_s),
                signaling.total_messages(),
                signaling.peak_messages_per_s(),
                signaling.overload_seconds(),
                signaling.overloaded_cells(),
            ));
            out.push_str(&format!(
                "rnc load : {}, worst per-RNC peak {} msg/s, {} overload second(s) across \
                 {} RNC(s)\n",
                capacity(signaling.rnc_capacity_per_s),
                signaling.rnc_peak_messages_per_s(),
                signaling.rnc_overload_seconds(),
                signaling.overloaded_rncs(),
            ));
            // Mobility lines appear only when handoffs happened, so a
            // static fleet's rendered text is byte-identical to the
            // pre-mobility format.
            let moved = signaling.handoffs() > 0;
            if moved {
                out.push_str(&format!(
                    "handoffs : {} between cells, {} across RNC boundaries\n",
                    signaling.handoffs(),
                    signaling.inter_rnc_handoffs(),
                ));
            }
            // Small hierarchies get full per-element tables; large ones
            // keep the aggregate lines above.
            if signaling.rncs.len() > 1 && signaling.rncs.len() <= 8 {
                for (index, rnc) in signaling.rncs.iter().enumerate() {
                    out.push_str(&format!(
                        "  rnc  {index:>2}: {} cells, {} users, peak {} msg/s, {} msgs, \
                         {} granted, {} denied ({} at RNC), {} overload s",
                        rnc.cells,
                        rnc.users,
                        rnc.peak_messages_per_s,
                        rnc.total_messages,
                        rnc.granted,
                        rnc.denied,
                        rnc.denied_by_rnc,
                        rnc.overload_seconds,
                    ));
                    if moved {
                        out.push_str(&format!(", {} inter-RNC handoffs", rnc.inter_rnc_handoffs));
                    }
                    out.push('\n');
                }
            }
            if signaling.cells.len() <= 12 {
                for (index, cell) in signaling.cells.iter().enumerate() {
                    out.push_str(&format!(
                        "  cell {index:>2}: {} users, peak {} msg/s, {} msgs, {} granted, \
                         {} denied, {} overload s",
                        cell.users,
                        cell.peak_messages_per_s,
                        cell.total_messages,
                        cell.granted,
                        cell.denied,
                        cell.overload_seconds,
                    ));
                    if moved {
                        out.push_str(&format!(
                            ", {} in / {} out handoffs",
                            cell.handoffs_in, cell.handoffs_out
                        ));
                    }
                    out.push('\n');
                }
            }
        }
        if self.wall_seconds > 0.0 {
            out.push_str(&format!(
                "speed    : {:.2} s wall on {} thread(s) — {:.1} user-days/sec\n",
                self.wall_seconds,
                self.threads,
                self.user_days_per_sec()
            ));
        }
        if let Some(timings) = self.timings.as_ref().filter(|t| t.any_positive()) {
            let phases: Vec<String> = timings
                .phases()
                .iter()
                .filter(|(_, seconds)| *seconds > 0.0)
                .map(|(name, seconds)| format!("{name} {seconds:.2} s"))
                .collect();
            out.push_str(&format!("phases   : {}", phases.join("  ")));
            if !timings.worker_busy.is_empty() {
                let busy: Vec<String> =
                    timings.worker_busy.iter().map(|b| format!("{:.0}%", b * 100.0)).collect();
                out.push_str(&format!(" (worker busy {})", busy.join(" ")));
            }
            out.push('\n');
        }
        out
    }
}

// Equality covers only the deterministic aggregate — wall-clock and
// thread count are measurement details. This is the comparison the
// thread-count invariance guarantee is stated in terms of: every f64 is
// compared exactly, not within a tolerance.
impl PartialEq for FleetReport {
    fn eq(&self, other: &FleetReport) -> bool {
        self.scenario == other.scenario
            && self.scheme == other.scheme
            && self.source == other.source
            && self.users == other.users
            && self.user_days == other.user_days
            && self.packets == other.packets
            && self.energy_j.to_bits() == other.energy_j.to_bits()
            && self.baseline_energy_j.to_bits() == other.baseline_energy_j.to_bits()
            && self.switches == other.switches
            && self.baseline_switches == other.baseline_switches
            && self.false_switches == other.false_switches
            && self.missed_switches == other.missed_switches
            && self.decisions == other.decisions
            && self.savings == other.savings
            && self.session_delays == other.session_delays
            && self.signaling == other.signaling
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_report(energy: f64, promotions: u64, packets: usize) -> SimReport {
        let mut r = SimReport::new("s".into(), "c".into());
        r.energy.tail_dch = energy;
        r.counters.promotions = promotions;
        r.packets = packets;
        r
    }

    #[test]
    fn fold_accumulates_and_savings_distribute() {
        let mut f = FleetReport::empty("test".into(), "MakeIdle".into());
        let base = sim_report(100.0, 10, 500);
        f.fold_user(1, &sim_report(40.0, 15, 500), &base);
        f.fold_user(2, &sim_report(80.0, 12, 700), &base);
        assert_eq!(f.users, 2);
        assert_eq!(f.user_days, 3);
        assert_eq!(f.packets, 1200);
        assert_eq!(f.switches, 27);
        assert_eq!(f.baseline_switches, 20);
        assert!((f.energy_j - 120.0).abs() < 1e-12);
        assert!((f.aggregate_savings_pct() - 40.0).abs() < 1e-12);
        assert!((f.mean_user_savings_pct() - 40.0).abs() < 1e-12);
        assert_eq!(f.savings.count(), 2);
    }

    #[test]
    fn merge_matches_sequential_fold() {
        // Merging shard partials must agree with a sequential fold on
        // every count exactly; the float totals agree to tolerance (the
        // reduction *tree* differs, which is precisely why shard size is
        // part of the scenario identity while thread count is not).
        let base = sim_report(90.0, 9, 300);
        let runs: Vec<SimReport> =
            (0..10).map(|i| sim_report(30.0 + i as f64 * 5.0, 8 + i, 300)).collect();
        let mut whole = FleetReport::empty("x".into(), "s".into());
        for r in &runs {
            whole.fold_user(1, r, &base);
        }
        let mut a = FleetReport::empty("x".into(), "s".into());
        let mut b = FleetReport::empty("x".into(), "s".into());
        for (i, r) in runs.iter().enumerate() {
            if i < 5 { &mut a } else { &mut b }.fold_user(1, r, &base);
        }
        a.merge(&b);
        assert_eq!(a.users, whole.users);
        assert_eq!(a.user_days, whole.user_days);
        assert_eq!(a.packets, whole.packets);
        assert_eq!(a.switches, whole.switches);
        assert_eq!(a.baseline_switches, whole.baseline_switches);
        assert_eq!(a.savings.bins(), whole.savings.bins());
        assert_eq!(a.savings.min(), whole.savings.min());
        assert_eq!(a.savings.max(), whole.savings.max());
        assert!((a.energy_j - whole.energy_j).abs() < 1e-9);
        assert!((a.baseline_energy_j - whole.baseline_energy_j).abs() < 1e-9);
        assert!((a.mean_user_savings_pct() - whole.mean_user_savings_pct()).abs() < 1e-9);
    }

    #[test]
    fn identical_merge_trees_are_bit_identical() {
        // The guarantee the runner actually relies on: the same shard
        // partition merged twice gives the same bits.
        let base = sim_report(90.0, 9, 300);
        let runs: Vec<SimReport> =
            (0..10).map(|i| sim_report(30.0 + i as f64 * 5.0, 8 + i, 300)).collect();
        let build = || {
            let mut shards: Vec<FleetReport> = Vec::new();
            for chunk in runs.chunks(3) {
                let mut s = FleetReport::empty("x".into(), "s".into());
                for r in chunk {
                    s.fold_user(1, r, &base);
                }
                shards.push(s);
            }
            let mut total = FleetReport::empty("x".into(), "s".into());
            for s in &shards {
                total.merge(s);
            }
            total
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn equality_ignores_wall_clock() {
        let mut a = FleetReport::empty("x".into(), "s".into());
        let mut b = a.clone();
        b.wall_seconds = 9.0;
        b.threads = 8;
        b.timings = Some(RunTimings { simulate_s: 4.5, ..RunTimings::default() });
        assert_eq!(a, b);
        a.users = 1;
        assert_ne!(a, b);
        // Provenance, by contrast, is part of the deterministic identity.
        a.users = 0;
        a.source = "corpus ./elsewhere (3 traces)".into();
        assert_ne!(a, b);
    }

    #[test]
    fn timings_render_only_when_positive() {
        let mut r = FleetReport::empty("x".into(), "s".into());
        assert!(!r.render().contains("phases"));
        r.timings = Some(RunTimings::default());
        assert!(!r.render().contains("phases"), "all-zero timings must stay silent");
        r.timings = Some(RunTimings {
            synthesize_s: 0.5,
            simulate_s: 1.25,
            adjudicate_s: 0.0,
            replay_s: 0.75,
            worker_busy: vec![0.97, 0.5],
        });
        let text = r.render();
        assert!(
            text.contains("phases   : synthesize 0.50 s  simulate 1.25 s  replay 0.75 s"),
            "{text}"
        );
        assert!(!text.contains("adjudicate"), "zero phases must be omitted: {text}");
        assert!(text.contains("(worker busy 97% 50%)"), "{text}");
    }

    #[test]
    fn timings_from_snapshot_reads_spans_and_workers() {
        let mut s = tailwise_obs::Snapshot::empty();
        s.spans
            .insert("synthesize".into(), tailwise_obs::SpanStat { count: 2, nanos: 500_000_000 });
        s.spans
            .insert("simulate".into(), tailwise_obs::SpanStat { count: 2, nanos: 1_000_000_000 });
        s.workers = vec![2_000_000_000, 1_000_000_000];
        let t = RunTimings::from_snapshot(&s, 2.0);
        assert_eq!(t.synthesize_s, 0.5);
        assert_eq!(t.simulate_s, 1.0);
        assert_eq!(t.adjudicate_s, 0.0);
        assert_eq!(t.replay_s, 0.0);
        assert_eq!(t.worker_busy, vec![1.0, 0.5]);
        assert!(t.any_positive());
        // Without a wall clock there is no meaningful busy fraction.
        assert!(RunTimings::from_snapshot(&s, 0.0).worker_busy.is_empty());
        assert!(!RunTimings::default().any_positive());
    }

    #[test]
    fn session_delays_fold_into_population_percentiles() {
        let mut f = FleetReport::empty("d".into(), "MakeIdle+MakeActive Learn".into());
        let base = sim_report(100.0, 10, 100);
        let mut a = sim_report(50.0, 10, 100);
        a.session_delays = vec![1.0, 2.0, 3.0];
        let mut b = sim_report(60.0, 10, 100);
        b.session_delays = vec![4.0, 100.0]; // 100 s clamps into the top bin
        f.fold_user(1, &a, &base);
        f.fold_user(1, &b, &base);
        assert_eq!(f.session_delays.count(), 5);
        let p50 = f.session_delay_percentile(0.5).unwrap();
        assert!((p50 - 3.0).abs() < 0.2, "p50 {p50}");
        assert_eq!(f.session_delays.max(), Some(100.0));
        assert!(f.render().contains("5 sessions held by MakeActive"), "{}", f.render());
        // Delay-free reports render no delay line and report None.
        let quiet = FleetReport::empty("q".into(), "MakeIdle".into());
        assert_eq!(quiet.session_delay_percentile(0.95), None);
        assert!(!quiet.render().contains("MakeActive"));
    }

    #[test]
    fn signaling_aggregates_and_identity() {
        let cell = |granted, denied, peak, overload| CellLoad {
            users: 2,
            granted,
            denied,
            total_messages: granted * 3 + 100,
            peak_messages_per_s: peak,
            overload_seconds: overload,
            ..CellLoad::default()
        };
        let signaling = FleetSignaling {
            cell_capacity_per_s: Some(50),
            rnc_capacity_per_s: Some(90),
            cells: vec![cell(10, 2, 40, 0), cell(20, 5, 80, 3)],
            rncs: vec![RncLoad {
                cells: 2,
                users: 4,
                granted: 30,
                denied: 7,
                denied_by_rnc: 4,
                total_messages: 190,
                peak_messages_per_s: 100,
                overload_seconds: 2,
                ..RncLoad::default()
            }],
        };
        assert_eq!(signaling.granted(), 30);
        assert_eq!(signaling.denied(), 7);
        assert_eq!(signaling.peak_messages_per_s(), 80);
        assert_eq!(signaling.overload_seconds(), 3);
        assert_eq!(signaling.overloaded_cells(), 1);
        assert_eq!(signaling.denied_by_rnc(), 4);
        assert_eq!(signaling.rnc_peak_messages_per_s(), 100);
        assert_eq!(signaling.rnc_overload_seconds(), 2);
        assert_eq!(signaling.overloaded_rncs(), 1);

        let mut a = FleetReport::empty("x".into(), "s".into());
        let b = a.clone();
        assert_eq!(a, b);
        a.signaling = Some(signaling.clone());
        assert_ne!(a, b, "signaling is part of the deterministic identity");
        let rendered = a.render();
        assert!(rendered.contains("1 RNC(s) over 2 cell(s)"), "{rendered}");
        assert!(rendered.contains("50 msg/s capacity"), "{rendered}");
        assert!(rendered.contains("rnc load : 90 msg/s capacity"), "{rendered}");
        assert!(rendered.contains("(4 at the RNC level)"), "{rendered}");
        assert!(rendered.contains("cell  1: 2 users, peak 80 msg/s"), "{rendered}");

        // Merge attaches a partial's signaling only when self has none.
        let mut c = FleetReport::empty("x".into(), "s".into());
        c.merge(&a);
        assert_eq!(c.signaling.as_ref(), Some(&signaling));
    }

    #[test]
    fn handoff_counters_render_only_when_handoffs_happened() {
        // Static runs (all handoff counters zero) must render the exact
        // pre-mobility text — no "handoffs" line, no table suffixes.
        let mut r = FleetReport::empty("x".into(), "s".into());
        let mut signaling = FleetSignaling {
            cell_capacity_per_s: None,
            rnc_capacity_per_s: None,
            cells: vec![CellLoad { users: 3, ..CellLoad::default() }; 2],
            rncs: vec![RncLoad { cells: 1, users: 3, ..RncLoad::default() }; 2],
        };
        r.signaling = Some(signaling.clone());
        let quiet = r.render();
        assert!(!quiet.contains("handoff"), "{quiet}");
        assert_eq!(signaling.handoffs(), 0);

        signaling.cells[0].handoffs_in = 4;
        signaling.cells[0].handoffs_out = 3;
        signaling.cells[1].handoffs_in = 3;
        signaling.cells[1].handoffs_out = 4;
        signaling.rncs[1].inter_rnc_handoffs = 2;
        assert_eq!(signaling.handoffs(), 7);
        assert_eq!(signaling.inter_rnc_handoffs(), 2);
        r.signaling = Some(signaling);
        let moved = r.render();
        assert!(moved.contains("handoffs : 7 between cells, 2 across RNC boundaries"), "{moved}");
        assert!(moved.contains("4 in / 3 out handoffs"), "{moved}");
        assert!(moved.contains("0 overload s, 2 inter-RNC handoffs"), "{moved}");
    }

    #[test]
    fn multi_rnc_hierarchies_render_the_rnc_table() {
        let rnc = |users, overload| RncLoad {
            cells: 2,
            users,
            granted: 5,
            denied: 1,
            denied_by_rnc: 1,
            total_messages: 50,
            peak_messages_per_s: 25,
            overload_seconds: overload,
            ..RncLoad::default()
        };
        let mut a = FleetReport::empty("x".into(), "s".into());
        a.signaling = Some(FleetSignaling {
            cell_capacity_per_s: None,
            rnc_capacity_per_s: Some(20),
            cells: vec![CellLoad::default(); 4],
            rncs: vec![rnc(3, 2), rnc(1, 0)],
        });
        let rendered = a.render();
        assert!(rendered.contains("2 RNC(s) over 4 cell(s)"), "{rendered}");
        assert!(rendered.contains("rnc   0: 2 cells, 3 users"), "{rendered}");
        assert!(rendered.contains("(1 at RNC), 2 overload s"), "{rendered}");
        assert!(rendered.contains("cell load: unbounded capacity"), "{rendered}");
    }

    #[test]
    #[should_panic(expected = "both carry cell signaling")]
    fn merging_two_signaling_reports_is_a_loud_error() {
        let signaling = FleetSignaling {
            cell_capacity_per_s: None,
            rnc_capacity_per_s: None,
            cells: vec![CellLoad::default()],
            rncs: vec![RncLoad::default()],
        };
        let mut a = FleetReport::empty("x".into(), "s".into());
        a.signaling = Some(signaling.clone());
        let mut b = FleetReport::empty("x".into(), "s".into());
        b.signaling = Some(signaling);
        a.merge(&b);
    }

    #[test]
    fn zero_population_edge_cases() {
        let f = FleetReport::empty("x".into(), "s".into());
        assert_eq!(f.aggregate_savings_pct(), 0.0);
        assert_eq!(f.mean_energy_per_user_day(), 0.0);
        assert_eq!(f.normalized_switches(), 1.0);
        assert_eq!(f.user_days_per_sec(), 0.0);
        assert!(f.render().contains("0 users"));
    }
}
