//! Declarative fleet scenarios and deterministic per-user synthesis.
//!
//! A [`Scenario`] names a synthetic population — how many users, what mix
//! of the §6.1 applications they run, which carrier profiles they are on,
//! which scheme is under test — plus a master seed. Everything about user
//! `i` (its carrier, app mix, usage habits, and every packet of its
//! trace) is a pure function of `(master_seed, i)`: seeding is
//! hierarchical, so any worker thread can materialize any user without
//! coordination, and the same scenario yields the same population at any
//! thread count or shard schedule.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tailwise_core::schemes::Scheme;
use tailwise_radio::profile::CarrierProfile;
use tailwise_scenfile::ScenError;
use tailwise_sim::engine::SimConfig;
use tailwise_trace::mix::splitmix64 as splitmix;
use tailwise_trace::time::Duration;
use tailwise_workload::apps::{AppKind, AppParams};
use tailwise_workload::diurnal::DiurnalProfile;
use tailwise_workload::user::UserModel;

/// Derives the seed of user `index` from the scenario master seed.
///
/// The inner round turns the master seed into a well-mixed per-scenario
/// constant (so structured master seeds like 1, 2, 3 don't produce
/// structured constants); the outer round is the one that decorrelates
/// the index — a single SplitMix64 finalizer fully avalanches, and
/// `StdRng::seed_from_u64` mixes once more on top.
pub fn user_seed(master_seed: u64, index: u64) -> u64 {
    splitmix(splitmix(master_seed ^ 0xF1EE_7000_0000_0000) ^ index)
}

/// A declarative population-scale experiment.
///
/// The deterministic identity of a fleet run is the full `Scenario`
/// value: every field (including `shard_size`, which fixes the
/// floating-point reduction order) feeds the resulting
/// [`FleetReport`](crate::FleetReport). Thread count deliberately does
/// *not* appear here — it is an execution knob passed to
/// [`run`](crate::run), and can never change the report.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name for reports.
    pub name: String,
    /// Population size.
    pub users: u64,
    /// Days of traffic synthesized per user (the paper's per-user traces
    /// run 2–5 days; fleets default to 1 for throughput).
    pub days_per_user: u32,
    /// The scheme under test, compared against [`Scheme::StatusQuo`].
    pub scheme: Scheme,
    /// Carrier profiles and their population weights.
    pub carrier_mix: Vec<(CarrierProfile, f64)>,
    /// Application kinds and their adoption weights. Background kinds
    /// populate always-on app slots, foreground kinds populate
    /// usage-session slots (see [`AppKind::is_background`]).
    pub app_mix: Vec<(AppKind, f64)>,
    /// Master seed; all per-user randomness derives from it.
    pub master_seed: u64,
    /// Users per shard. Fixes the deterministic reduction order, so it is
    /// part of the scenario identity — changing it changes the report in
    /// the last floating-point bits.
    pub shard_size: u64,
    /// Engine configuration shared by every user simulation.
    pub sim: SimConfig,
    /// Optional cell topology: partitions users across base-station
    /// cells and routes fast-dormancy requests through each cell's
    /// shared release policy (the `[cells]` file table). `None` keeps
    /// users radio-isolated. Requires a
    /// [scriptable](tailwise_core::schemes::Scheme::scriptable) scheme.
    pub cells: Option<crate::topology::NetworkTopology>,
}

impl Scenario {
    /// A scenario with the paper's seven-app mix, weighted toward the
    /// chatty background apps that dominate real phone populations.
    pub fn new(users: u64, scheme: Scheme, carrier: CarrierProfile) -> Scenario {
        Scenario {
            name: format!("{} × {} on {}", users, scheme.label(), carrier.name),
            users,
            days_per_user: 1,
            scheme,
            carrier_mix: vec![(carrier, 1.0)],
            app_mix: vec![
                (AppKind::Im, 3.0),
                (AppKind::Email, 2.5),
                (AppKind::News, 1.5),
                (AppKind::MicroBlog, 1.5),
                (AppKind::GameAds, 1.0),
                (AppKind::Social, 2.0),
                (AppKind::Finance, 1.0),
            ],
            master_seed: 1,
            shard_size: 64,
            sim: SimConfig::default(),
            cells: None,
        }
    }

    /// Loads a scenario from an on-disk file (see
    /// `docs/SCENARIO_FORMAT.md` for the format).
    ///
    /// Errors — including the file declaring `[[sweep]]` axes, which a
    /// single `Scenario` cannot represent — carry the file path and a
    /// line/column position. Use
    /// [`ScenarioSet::from_file`](crate::sweep::ScenarioSet::from_file)
    /// to load sweep files.
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Scenario, ScenError> {
        let path = path.as_ref();
        crate::sweep::ScenarioSet::from_file(path).and_then(|set| {
            if set.is_sweep() {
                Err(ScenError::at(
                    tailwise_scenfile::Pos::START,
                    "file declares [[sweep]] axes; load it with ScenarioSet::from_file \
                     (or run it with `tailwise fleet run`)",
                )
                .with_origin(path.display().to_string()))
            } else {
                Ok(set.base)
            }
        })
    }

    /// Parses a scenario from document text (no sweep axes allowed; see
    /// [`from_file`](Self::from_file)).
    pub fn from_toml_str(src: &str) -> Result<Scenario, ScenError> {
        let set = crate::sweep::ScenarioSet::from_toml_str(src)?;
        if set.is_sweep() {
            return Err(ScenError::at(
                tailwise_scenfile::Pos::START,
                "document declares [[sweep]] axes; parse it as a ScenarioSet",
            ));
        }
        Ok(set.base)
    }

    /// Serializes the scenario to document text that
    /// [`from_toml_str`](Self::from_toml_str) parses back to an equal
    /// value (pinned by a property test).
    ///
    /// Errors — with
    /// [`ScenErrorKind::Emit`](tailwise_scenfile::ScenErrorKind::Emit),
    /// the same [`ScenError`] type the read path uses — when the
    /// scenario is not representable on disk: carrier profiles must be
    /// built-in presets, and every mix weight must be positive and
    /// finite.
    pub fn to_toml_string(&self) -> Result<String, ScenError> {
        crate::file::set_to_toml(self, &[])
    }

    /// Writes [`to_toml_string`](Self::to_toml_string) to `path`.
    /// I/O failures are emit-kind [`ScenError`]s carrying the path as
    /// their origin.
    pub fn to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), ScenError> {
        let path = path.as_ref();
        let text = self.to_toml_string()?;
        std::fs::write(path, text).map_err(|e| {
            ScenError::emit(format!("cannot write scenario file: {e}"))
                .with_origin(path.display().to_string())
        })
    }

    /// Number of shards the population partitions into.
    pub fn shard_count(&self) -> u64 {
        if self.users == 0 {
            0
        } else {
            self.users.div_ceil(self.shard_size.max(1))
        }
    }

    /// The user-index range of shard `shard` (empty past the end).
    pub fn shard_range(&self, shard: u64) -> std::ops::Range<u64> {
        let size = self.shard_size.max(1);
        let lo = (shard * size).min(self.users);
        let hi = ((shard + 1) * size).min(self.users);
        lo..hi
    }

    /// Total synthesized user-days. Applies the same ≥ 1 day clamp as
    /// [`user`](Self::user), so the count always matches what the runner
    /// actually simulates.
    pub fn user_days(&self) -> u64 {
        self.users * self.days_per_user.max(1) as u64
    }

    /// Materializes user `index`: its carrier and its [`UserModel`].
    ///
    /// Pure in `(self, index)` — no shared state, no ordering dependence.
    pub fn user(&self, index: u64) -> (CarrierProfile, UserModel) {
        assert!(index < self.users, "user index {index} out of range");
        assert!(!self.carrier_mix.is_empty(), "scenario needs at least one carrier");
        assert!(!self.app_mix.is_empty(), "scenario needs at least one app kind");
        let seed = user_seed(self.master_seed, index);
        let mut rng = StdRng::seed_from_u64(seed);

        let carrier = self.carrier_mix
            [weighted_index(&mut rng, self.carrier_mix.iter().map(|(_, w)| *w))]
        .0
        .clone();

        let background: Vec<(AppKind, f64)> =
            self.app_mix.iter().filter(|(k, w)| k.is_background() && *w > 0.0).copied().collect();
        let foreground: Vec<(AppKind, f64)> =
            self.app_mix.iter().filter(|(k, w)| !k.is_background() && *w > 0.0).copied().collect();

        // Every phone runs at least one background app (push/IM keeps
        // real phones chattering); foreground use varies more.
        let n_back = if background.is_empty() { 0 } else { rng.random_range(1usize..=3) };
        let n_fore = if foreground.is_empty() { 0 } else { rng.random_range(0usize..=2) };
        let background_apps = pick_apps(&mut rng, &background, n_back);
        let foreground_apps = pick_apps(&mut rng, &foreground, n_fore);

        let diurnal = match rng.random_range(0u32..4) {
            0 => DiurnalProfile::light(),
            1 | 2 => DiurnalProfile::typical(),
            _ => DiurnalProfile::heavy(),
        };
        let sessions_per_day =
            if foreground_apps.is_empty() { 0.0 } else { rng.random_range(4.0f64..=14.0) };
        let median_session = Duration::from_secs(rng.random_range(180i64..=600));

        let model = UserModel {
            name: format!("fleet user {index}"),
            // Re-mix so the trace streams don't share state with the
            // composition draws above.
            seed: splitmix(seed ^ 0x7124_CE00),
            days: self.days_per_user.max(1),
            background_apps,
            foreground_apps,
            diurnal,
            sessions_per_day,
            median_session,
        };
        (carrier, model)
    }
}

/// The deterministic carrier draw shared by synthetic synthesis and
/// corpus replay: seeds a fresh RNG from `(master_seed, index)` and
/// takes one weighted draw — exactly the first draw [`Scenario::user`]
/// makes, so a corpus written by
/// [`synth_corpus`](crate::source::synth_corpus) replays each user on
/// the carrier it was synthesized for (pinned by a test below).
pub(crate) fn draw_carrier(
    carrier_mix: &[(CarrierProfile, f64)],
    master_seed: u64,
    index: u64,
) -> CarrierProfile {
    assert!(!carrier_mix.is_empty(), "corpus replay needs at least one carrier");
    let mut rng = StdRng::seed_from_u64(user_seed(master_seed, index));
    carrier_mix[weighted_index(&mut rng, carrier_mix.iter().map(|(_, w)| *w))].0.clone()
}

/// Draws an index with probability proportional to its weight.
fn weighted_index<R: Rng + ?Sized>(
    rng: &mut R,
    weights: impl Iterator<Item = f64> + Clone,
) -> usize {
    let total: f64 = weights.clone().filter(|w| *w > 0.0).sum();
    assert!(total > 0.0, "weights must have positive mass");
    let mut ticket = rng.random::<f64>() * total;
    let mut last = 0;
    for (i, w) in weights.enumerate() {
        if w <= 0.0 {
            continue;
        }
        last = i;
        if ticket < w {
            return i;
        }
        ticket -= w;
    }
    last
}

/// Picks up to `n` distinct app kinds by weight (without replacement).
fn pick_apps<R: Rng + ?Sized>(rng: &mut R, pool: &[(AppKind, f64)], n: usize) -> Vec<AppParams> {
    let mut remaining: Vec<(AppKind, f64)> = pool.to_vec();
    let mut chosen = Vec::with_capacity(n);
    for _ in 0..n.min(pool.len()) {
        let i = weighted_index(rng, remaining.iter().map(|(_, w)| *w));
        let (kind, _) = remaining.swap_remove(i);
        chosen.push(AppParams::defaults(kind));
    }
    // swap_remove scrambles order; sort so the app list (and therefore
    // the UserModel's per-app seed assignment) is canonical.
    chosen.sort_by_key(|a| a.kind);
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario(users: u64) -> Scenario {
        Scenario::new(users, Scheme::MakeIdle, CarrierProfile::verizon_lte())
    }

    #[test]
    fn user_synthesis_is_deterministic_and_index_sensitive() {
        let s = scenario(100);
        let (c1, u1) = s.user(17);
        let (c2, u2) = s.user(17);
        assert_eq!(c1, c2);
        assert_eq!(u1, u2);
        let (_, u3) = s.user(18);
        assert_ne!(u1.seed, u3.seed);
    }

    #[test]
    fn master_seed_changes_every_user() {
        let a = scenario(10);
        let mut b = scenario(10);
        b.master_seed = 2;
        for i in 0..10 {
            assert_ne!(a.user(i).1.seed, b.user(i).1.seed, "user {i}");
        }
    }

    #[test]
    fn every_user_has_background_traffic() {
        let s = scenario(50);
        for i in 0..50 {
            let (_, u) = s.user(i);
            assert!(!u.background_apps.is_empty(), "user {i} is silent");
            assert!(u.days >= 1);
            if u.foreground_apps.is_empty() {
                assert_eq!(u.sessions_per_day, 0.0);
            } else {
                assert!(u.sessions_per_day > 0.0);
            }
        }
    }

    #[test]
    fn carrier_mix_weights_are_respected() {
        let mut s = scenario(400);
        s.carrier_mix =
            vec![(CarrierProfile::verizon_lte(), 3.0), (CarrierProfile::att_hspa(), 1.0)];
        let lte = (0..400).filter(|&i| s.user(i).0.name == "Verizon LTE").count();
        // Expect ~300 of 400; allow generous stochastic slack.
        assert!((240..=360).contains(&lte), "lte count {lte}");
    }

    #[test]
    fn shard_partition_tiles_the_population() {
        let mut s = scenario(1000);
        s.shard_size = 64;
        let mut covered = 0u64;
        for shard in 0..s.shard_count() {
            let r = s.shard_range(shard);
            assert_eq!(r.start, covered);
            covered = r.end;
        }
        assert_eq!(covered, s.users);
        assert!(s.shard_range(s.shard_count() + 5).is_empty());
        assert_eq!(scenario(0).shard_count(), 0);
    }

    #[test]
    fn file_round_trip_through_disk() {
        let mut s = scenario(120);
        s.master_seed = 0xDEADBEEF_00C0FFEE;
        s.shard_size = 17;
        s.days_per_user = 2;
        let path = std::env::temp_dir().join("tailwise_scenario_roundtrip_test.toml");
        s.to_file(&path).unwrap();
        let loaded = Scenario::from_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, s);
    }

    #[test]
    fn from_file_reports_missing_files_and_rejects_sweeps() {
        let err = Scenario::from_file("/nonexistent/scenario.toml").unwrap_err();
        assert!(err.message.contains("cannot read scenario file"), "{err}");
        assert!(err.to_string().contains("/nonexistent/scenario.toml"), "{err}");

        let sweep_doc = concat!(
            "[scenario]\nusers = 4\n",
            "[[carrier]]\nprofile = \"verizon-lte\"\n",
            "[[app]]\nkind = \"im\"\n",
            "[[sweep]]\naxis = \"users\"\nvalues = [4, 8]\n",
        );
        let err = Scenario::from_toml_str(sweep_doc).unwrap_err();
        assert!(err.message.contains("[[sweep]]"), "{err}");
    }

    #[test]
    fn draw_carrier_matches_synthetic_user_synthesis() {
        // The coupling corpus replay relies on: the standalone carrier
        // draw reproduces the carrier `Scenario::user` assigns.
        let mut s = scenario(64);
        s.master_seed = 0xC0FFEE;
        s.carrier_mix =
            vec![(CarrierProfile::verizon_lte(), 2.0), (CarrierProfile::att_hspa(), 1.0)];
        for i in 0..64 {
            assert_eq!(
                s.user(i).0,
                draw_carrier(&s.carrier_mix, s.master_seed, i),
                "user {i} carrier drifted"
            );
        }
    }

    #[test]
    fn weighted_index_follows_weights() {
        let mut rng = StdRng::seed_from_u64(5);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..5000 {
            counts[weighted_index(&mut rng, weights.iter().copied())] += 1;
        }
        assert_eq!(counts[0], 0);
        assert!(counts[1] > 4000, "{counts:?}");
        assert!(counts[2] > 250, "{counts:?}");
    }
}
