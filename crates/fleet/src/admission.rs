//! Declarative admission policies for the fleet's network hierarchy.
//!
//! An [`AdmissionSpec`] is the file-representable description of an
//! [`AdmissionPolicy`]: the runner builds one fresh policy instance per
//! network element (cell or RNC), so elements never share admission
//! state. The spec replaces the old hard-coded `ReleaseSpec` dispatch —
//! the same three specs serve both hierarchy levels:
//!
//! * [`Always`](AdmissionSpec::Always) — the paper's §2.2 modeling
//!   assumption: every request honored;
//! * [`RateLimited`](AdmissionSpec::RateLimited) — at most one grant
//!   per interval per element (the PR 4 storm guard);
//! * [`LoadReactive`](AdmissionSpec::LoadReactive) — deny while the
//!   element's rolling message rate sits at or above a watermark
//!   ([`tailwise_radio::admission::LoadReactive`]), the §8
//!   controller-protecting policy.
//!
//! ## Token grammar
//!
//! Scenario-file *tables* spell a spec structurally (`admission =
//! "reactive"` plus `watermark_per_s`/`window_s` keys — see
//! `docs/SCENARIO_FORMAT.md` §6). Sweep values and CLI flags use the
//! compact one-token form parsed by [`FromStr`](std::str::FromStr) and printed by
//! [`Display`](std::fmt::Display):
//!
//! | Token | Spec |
//! |---|---|
//! | `always` | every request admitted |
//! | `rate-limited:<secs>` | one grant per `<secs>` seconds |
//! | `reactive:<watermark>` | deny at ≥ `<watermark>` msg/s over a 1 s window |
//! | `reactive:<watermark>:<window>` | same, over a `<window>`-second rolling window |

use tailwise_radio::admission::{AdmissionPolicy, LoadReactive};
use tailwise_radio::fastdormancy::{AlwaysAccept, RateLimited};
use tailwise_trace::time::Duration;

/// A declarative (file-representable) admission policy for one level of
/// the network hierarchy. See the module docs for the variants and the
/// token grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum AdmissionSpec {
    /// The paper's modeling assumption: every request is honored (§2.2).
    Always,
    /// At most one grant per `min_interval` per element — an element
    /// protecting itself from fast-dormancy storms by spacing (§8).
    RateLimited {
        /// Minimum spacing between grants.
        min_interval: Duration,
    },
    /// Deny while the element's rolling message rate is at or above the
    /// watermark — admission that *reacts* to load (§8's storm, closed
    /// loop). Messages are the adjudication-time model:
    /// `per_fd_demotion` per grant, one per denial.
    LoadReactive {
        /// Rolling mean message rate (per second) at which requests are
        /// denied.
        watermark_per_s: u64,
        /// Rolling window length, whole seconds (≥ 1).
        window_s: u64,
    },
}

impl AdmissionSpec {
    /// The stable on-disk kind token (`admission = "..."` in `[cells]`
    /// and `[rnc]` tables). Parameters ride in separate keys there; the
    /// compact one-token spelling is [`Display`](std::fmt::Display).
    pub fn token(&self) -> &'static str {
        match self {
            AdmissionSpec::Always => "always",
            AdmissionSpec::RateLimited { .. } => "rate-limited",
            AdmissionSpec::LoadReactive { .. } => "reactive",
        }
    }

    /// Builds one element's fresh admission-policy instance.
    pub fn build(&self) -> Box<dyn AdmissionPolicy> {
        match self {
            AdmissionSpec::Always => Box::new(AlwaysAccept),
            AdmissionSpec::RateLimited { min_interval } => {
                Box::new(RateLimited::new(*min_interval))
            }
            AdmissionSpec::LoadReactive { watermark_per_s, window_s } => {
                Box::new(LoadReactive::new(*watermark_per_s, *window_s))
            }
        }
    }
}

impl std::fmt::Display for AdmissionSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionSpec::Always => write!(f, "always"),
            AdmissionSpec::RateLimited { min_interval } => {
                write!(f, "rate-limited:{}", min_interval.as_secs_f64())
            }
            AdmissionSpec::LoadReactive { watermark_per_s, window_s: 1 } => {
                write!(f, "reactive:{watermark_per_s}")
            }
            AdmissionSpec::LoadReactive { watermark_per_s, window_s } => {
                write!(f, "reactive:{watermark_per_s}:{window_s}")
            }
        }
    }
}

impl std::str::FromStr for AdmissionSpec {
    type Err = String;

    fn from_str(token: &str) -> Result<AdmissionSpec, String> {
        let mut parts = token.split(':');
        let kind = parts.next().unwrap_or_default();
        let args: Vec<&str> = parts.collect();
        let usage = "one of always, rate-limited:<secs>, reactive:<watermark>[:<window_s>]";
        match kind {
            "always" => match args.is_empty() {
                true => Ok(AdmissionSpec::Always),
                false => Err(format!("`always` takes no parameters; {usage}")),
            },
            "rate-limited" => {
                let [secs] = args.as_slice() else {
                    return Err(format!(
                        "`rate-limited` needs exactly one parameter (seconds between grants); \
                         {usage}"
                    ));
                };
                let secs: f64 = secs
                    .parse()
                    .map_err(|_| format!("rate-limited interval {secs:?} is not a number"))?;
                if !(secs.is_finite() && secs > 0.0) {
                    return Err(format!("rate-limited interval must be positive, got {secs}"));
                }
                Ok(AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(secs) })
            }
            "reactive" => {
                let (watermark, window) = match args.as_slice() {
                    [watermark] => (*watermark, None),
                    [watermark, window] => (*watermark, Some(*window)),
                    _ => {
                        return Err(format!(
                            "`reactive` needs a watermark and an optional window; {usage}"
                        ))
                    }
                };
                let watermark_per_s: u64 = watermark.parse().map_err(|_| {
                    format!("reactive watermark {watermark:?} is not a message rate")
                })?;
                let window_s: u64 = match window {
                    None => 1,
                    Some(w) => match w.parse() {
                        Ok(w) if w >= 1 => w,
                        _ => {
                            return Err(format!(
                                "reactive window {w:?} must be a whole number of seconds ≥ 1"
                            ))
                        }
                    },
                };
                Ok(AdmissionSpec::LoadReactive { watermark_per_s, window_s })
            }
            other => Err(format!("unknown admission policy {other:?}; {usage}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tailwise_trace::time::Instant;

    #[test]
    fn tokens_and_builders() {
        assert_eq!(AdmissionSpec::Always.token(), "always");
        let limited = AdmissionSpec::RateLimited { min_interval: Duration::from_secs(5) };
        assert_eq!(limited.token(), "rate-limited");
        let mut policy = limited.build();
        assert!(policy.admit(Instant::ZERO));
        assert!(!policy.admit(Instant::from_secs(1)));
        assert!(policy.admit(Instant::from_secs(5)));
        let mut always = AdmissionSpec::Always.build();
        assert!((0..10).all(|i| always.admit(Instant::from_secs(i))));

        let reactive = AdmissionSpec::LoadReactive { watermark_per_s: 2, window_s: 1 };
        assert_eq!(reactive.token(), "reactive");
        let mut policy = reactive.build();
        assert!(policy.admit(Instant::ZERO));
        policy.observe(Instant::ZERO, 2);
        assert!(!policy.admit(Instant::ZERO), "watermark engages");
    }

    #[test]
    fn compound_tokens_round_trip() {
        for spec in [
            AdmissionSpec::Always,
            AdmissionSpec::RateLimited { min_interval: Duration::from_secs_f64(2.5) },
            AdmissionSpec::RateLimited { min_interval: Duration::from_micros(1) },
            AdmissionSpec::LoadReactive { watermark_per_s: 120, window_s: 1 },
            AdmissionSpec::LoadReactive { watermark_per_s: 0, window_s: 7 },
        ] {
            let token = spec.to_string();
            assert_eq!(token.parse::<AdmissionSpec>().unwrap(), spec, "token {token:?}");
        }
        assert_eq!("reactive:120".parse::<AdmissionSpec>().unwrap().to_string(), "reactive:120");
    }

    #[test]
    fn malformed_tokens_explain_themselves() {
        for (token, needle) in [
            ("sometimes", "unknown admission policy"),
            ("always:1", "takes no parameters"),
            ("rate-limited", "exactly one parameter"),
            ("rate-limited:0", "must be positive"),
            ("rate-limited:soon", "not a number"),
            ("reactive", "needs a watermark"),
            ("reactive:fast", "not a message rate"),
            ("reactive:10:0", "≥ 1"),
            ("reactive:10:2:3", "optional window"),
        ] {
            let err = token.parse::<AdmissionSpec>().unwrap_err();
            assert!(err.contains(needle), "{token:?}: {err}");
        }
    }
}
