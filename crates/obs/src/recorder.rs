//! The [`Recorder`] trait and its two implementations: the free-when-
//! off [`NullRecorder`] and the aggregating [`StatsRecorder`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A named monotonic counter handle.
///
/// Handles are resolved once per shard (one map lookup) and then
/// bumped with relaxed atomic adds — cheap enough for per-user hot
/// loops. Handles from a [`NullRecorder`] carry no cell at all, so
/// updates are a single predictable branch.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A detached counter that swallows every update.
    pub fn detached() -> Counter {
        Counter { cell: None }
    }

    fn live(cell: Arc<AtomicU64>) -> Counter {
        Counter { cell: Some(cell) }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` (relaxed; totals are only read after the run joins its
    /// workers, so no ordering is needed).
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value (0 for detached handles).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |cell| cell.load(Ordering::Relaxed))
    }
}

/// Aggregate of one named span: how many times it ran and the total
/// nanoseconds spent inside it (summed across threads, so totals can
/// exceed wall-clock on parallel runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of recorded span executions.
    pub count: u64,
    /// Total nanoseconds across all executions.
    pub nanos: u64,
}

impl SpanStat {
    /// Total time in seconds.
    pub fn seconds(&self) -> f64 {
        self.nanos as f64 / 1e9
    }
}

/// A point-in-time copy of everything a [`Recorder`] has accumulated.
///
/// Snapshots are plain owned data: diff two with [`Snapshot::since`]
/// to attribute spans/counters to one slice of a longer run (the sweep
/// runner does exactly this to give each sweep row its own timings).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-span aggregates, keyed by span name.
    pub spans: BTreeMap<String, SpanStat>,
    /// Counter totals, keyed by counter name.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values, keyed by gauge name.
    pub gauges: BTreeMap<String, u64>,
    /// Busy nanoseconds per worker slot (index = worker).
    pub workers: Vec<u64>,
}

impl Snapshot {
    /// The empty snapshot (what [`NullRecorder`] always returns).
    pub fn empty() -> Snapshot {
        Snapshot::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.workers.is_empty()
    }

    /// Total seconds recorded under span `name` (0.0 when absent).
    pub fn span_seconds(&self, name: &str) -> f64 {
        self.spans.get(name).map_or(0.0, SpanStat::seconds)
    }

    /// Counter total for `name` (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// What happened between `earlier` and `self`: per-key saturating
    /// deltas for spans and counters, element-wise deltas for worker
    /// busy time. Gauges are last-write values, not sums, so the later
    /// snapshot's gauges are kept as-is.
    pub fn since(&self, earlier: &Snapshot) -> Snapshot {
        let spans = self
            .spans
            .iter()
            .map(|(name, stat)| {
                let base = earlier.spans.get(name).copied().unwrap_or_default();
                let delta = SpanStat {
                    count: stat.count.saturating_sub(base.count),
                    nanos: stat.nanos.saturating_sub(base.nanos),
                };
                (name.clone(), delta)
            })
            .filter(|(_, stat)| stat.count > 0 || stat.nanos > 0)
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, total)| (name.clone(), total.saturating_sub(earlier.counter(name))))
            .filter(|(_, total)| *total > 0)
            .collect();
        let workers = self
            .workers
            .iter()
            .enumerate()
            .map(|(w, nanos)| nanos.saturating_sub(earlier.workers.get(w).copied().unwrap_or(0)))
            .collect();
        Snapshot { spans, counters, gauges: self.gauges.clone(), workers }
    }
}

/// Sink for spans, counters, gauges, and per-worker busy time.
///
/// Implementations must be `Sync`: one recorder is shared by reference
/// across every worker thread of a run. The contract that matters is
/// that recording only observes — implementations must never feed
/// anything back into the code being measured.
pub trait Recorder: Sync {
    /// Whether this recorder keeps anything. Probe sites use this to
    /// skip clock reads entirely (see [`span`]).
    fn enabled(&self) -> bool;

    /// Adds one execution of `name` lasting `nanos` nanoseconds.
    fn record_span(&self, name: &'static str, nanos: u64);

    /// Resolves a counter handle for `name`. Call once per shard, then
    /// bump the handle in the loop.
    fn counter(&self, name: &'static str) -> Counter;

    /// Sets gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: u64);

    /// Adds `busy_nanos` of busy time to worker slot `worker`.
    fn record_worker(&self, worker: usize, busy_nanos: u64);

    /// An owned copy of everything accumulated so far.
    fn snapshot(&self) -> Snapshot;
}

/// Times a region: records `name` on the recorder when dropped.
///
/// Construct via [`span`]; when the recorder is disabled the guard is
/// inert and no clock is ever read.
#[must_use = "dropping the guard immediately records a zero-length span"]
pub struct SpanGuard<'a> {
    active: Option<(&'a dyn Recorder, &'static str, Instant)>,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((recorder, name, started)) = self.active.take() {
            recorder.record_span(name, started.elapsed().as_nanos() as u64);
        }
    }
}

/// Starts timing `name`; the returned guard records the elapsed time
/// on drop. When `recorder.enabled()` is false this never touches the
/// clock — the whole probe costs one branch.
pub fn span<'a>(recorder: &'a dyn Recorder, name: &'static str) -> SpanGuard<'a> {
    if recorder.enabled() {
        SpanGuard { active: Some((recorder, name, Instant::now())) }
    } else {
        SpanGuard { active: None }
    }
}

/// The recorder that records nothing.
///
/// Every method is a no-op and `enabled()` is false, so probe sites
/// collapse to a branch and counter handles are detached.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record_span(&self, _name: &'static str, _nanos: u64) {}

    fn counter(&self, _name: &'static str) -> Counter {
        Counter::detached()
    }

    fn gauge(&self, _name: &'static str, _value: u64) {}

    fn record_worker(&self, _worker: usize, _busy_nanos: u64) {}

    fn snapshot(&self) -> Snapshot {
        Snapshot::empty()
    }
}

/// The recorder that keeps everything, aggregated in memory.
///
/// Counters live on shared atomics so the hot path never takes a lock;
/// spans, gauges, and worker busy time go through short mutexed map
/// updates (spans are recorded once per region, not per user, so the
/// lock is off the hot path).
#[derive(Debug, Default)]
pub struct StatsRecorder {
    spans: Mutex<BTreeMap<&'static str, SpanStat>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<&'static str, u64>>,
    workers: Mutex<Vec<u64>>,
}

impl StatsRecorder {
    /// A new empty recorder.
    pub fn new() -> StatsRecorder {
        StatsRecorder::default()
    }
}

impl Recorder for StatsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record_span(&self, name: &'static str, nanos: u64) {
        let mut spans = self.spans.lock().expect("span map poisoned");
        let stat = spans.entry(name).or_default();
        stat.count += 1;
        stat.nanos += nanos;
    }

    fn counter(&self, name: &'static str) -> Counter {
        let mut counters = self.counters.lock().expect("counter map poisoned");
        Counter::live(Arc::clone(counters.entry(name).or_default()))
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.gauges.lock().expect("gauge map poisoned").insert(name, value);
    }

    fn record_worker(&self, worker: usize, busy_nanos: u64) {
        let mut workers = self.workers.lock().expect("worker table poisoned");
        if workers.len() <= worker {
            workers.resize(worker + 1, 0);
        }
        workers[worker] += busy_nanos;
    }

    fn snapshot(&self) -> Snapshot {
        let spans = self
            .spans
            .lock()
            .expect("span map poisoned")
            .iter()
            .map(|(name, stat)| (name.to_string(), *stat))
            .collect();
        let counters = self
            .counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(name, cell)| (name.to_string(), cell.load(Ordering::Relaxed)))
            .collect();
        let gauges = self
            .gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(name, value)| (name.to_string(), *value))
            .collect();
        let workers = self.workers.lock().expect("worker table poisoned").clone();
        Snapshot { spans, counters, gauges, workers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_recorder_aggregates_spans_and_counters() {
        let r = StatsRecorder::new();
        {
            let _outer = span(&r, "simulate");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        r.record_span("simulate", 500);
        let c = r.counter("users_simulated");
        c.incr();
        c.add(4);
        // A second handle for the same name shares the cell.
        r.counter("users_simulated").incr();
        r.gauge("shard_count", 9);
        r.gauge("shard_count", 11);
        r.record_worker(1, 300);
        r.record_worker(1, 200);

        let s = r.snapshot();
        assert_eq!(s.spans["simulate"].count, 2);
        assert!(s.spans["simulate"].nanos >= 2_000_000 + 500);
        assert_eq!(s.counter("users_simulated"), 6);
        assert_eq!(s.gauges["shard_count"], 11);
        assert_eq!(s.workers, vec![0, 500]);
    }

    #[test]
    fn null_recorder_records_nothing() {
        let r = NullRecorder;
        {
            let _g = span(&r, "simulate");
        }
        r.record_span("simulate", 99);
        r.counter("x").add(7);
        r.gauge("g", 1);
        r.record_worker(0, 1);
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn span_guard_skips_the_clock_when_disabled() {
        let g = span(&NullRecorder, "anything");
        assert!(g.active.is_none());
    }

    #[test]
    fn snapshot_since_takes_saturating_deltas() {
        let r = StatsRecorder::new();
        r.record_span("simulate", 100);
        r.counter("users").add(3);
        r.record_worker(0, 10);
        let before = r.snapshot();

        r.record_span("simulate", 50);
        r.record_span("replay", 25);
        r.counter("users").add(2);
        r.counter("packets").add(9);
        r.gauge("shards", 4);
        r.record_worker(0, 5);
        r.record_worker(1, 7);

        let delta = r.snapshot().since(&before);
        assert_eq!(delta.spans["simulate"], SpanStat { count: 1, nanos: 50 });
        assert_eq!(delta.spans["replay"], SpanStat { count: 1, nanos: 25 });
        assert_eq!(delta.counter("users"), 2);
        assert_eq!(delta.counter("packets"), 9);
        assert_eq!(delta.gauges["shards"], 4);
        assert_eq!(delta.workers, vec![5, 7]);
        // A full-window delta against empty reproduces the snapshot.
        let all = r.snapshot();
        assert_eq!(all.since(&Snapshot::empty()), all);
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let r = StatsRecorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = r.counter("hits");
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(r.snapshot().counter("hits"), 4000);
    }

    #[test]
    fn span_seconds_converts_nanos() {
        let mut s = Snapshot::empty();
        s.spans.insert("run".into(), SpanStat { count: 1, nanos: 1_500_000_000 });
        assert!((s.span_seconds("run") - 1.5).abs() < 1e-12);
        assert_eq!(s.span_seconds("absent"), 0.0);
    }
}
