//! Lock-free live progress: workers publish per-shard counts into a
//! [`ProgressTable`], a [`ProgressSampler`] thread renders them as a
//! single self-overwriting stderr line.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One worker's publication slot: the shard it is on and its running
/// totals. All fields are relaxed atomics — the sampler reads a
/// slightly-stale view, which is exactly what a progress line needs.
#[derive(Debug, Default)]
pub struct ProgressSlot {
    shard: AtomicU64,
    users_done: AtomicU64,
    user_days: AtomicU64,
    traces_failed: AtomicU64,
}

impl ProgressSlot {
    /// Publishes that this worker started `shard`.
    pub fn begin_shard(&self, shard: u64) {
        self.shard.store(shard, Ordering::Relaxed);
    }

    /// Publishes one finished user contributing `days` user-days.
    pub fn add_user(&self, days: u64) {
        self.users_done.fetch_add(1, Ordering::Relaxed);
        self.user_days.fetch_add(days, Ordering::Relaxed);
    }

    /// Publishes one failed trace load.
    pub fn add_failure(&self) {
        self.traces_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Current `(shard, users_done, user_days, traces_failed)`.
    pub fn read(&self) -> (u64, u64, u64, u64) {
        (
            self.shard.load(Ordering::Relaxed),
            self.users_done.load(Ordering::Relaxed),
            self.user_days.load(Ordering::Relaxed),
            self.traces_failed.load(Ordering::Relaxed),
        )
    }
}

/// Summed progress across every worker slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgressTotals {
    /// Users finished so far (topology runs count each of the two
    /// passes, so a finished run reports `2 × users`).
    pub users_done: u64,
    /// User-days folded so far.
    pub user_days: u64,
    /// Trace loads that failed.
    pub traces_failed: u64,
}

/// The shared progress table: one [`ProgressSlot`] per worker plus the
/// run-wide expected-user total the runner publishes once it knows it.
#[derive(Debug)]
pub struct ProgressTable {
    users_total: AtomicU64,
    started: Instant,
    slots: Box<[ProgressSlot]>,
}

impl ProgressTable {
    /// A table with `workers` slots (at least one).
    pub fn new(workers: usize) -> ProgressTable {
        let slots = (0..workers.max(1)).map(|_| ProgressSlot::default()).collect();
        ProgressTable { users_total: AtomicU64::new(0), started: Instant::now(), slots }
    }

    /// Publishes how many user completions the upcoming run will add.
    /// The runner calls this once per run as soon as the population is
    /// known; topology runs publish `2 × users` because both passes
    /// count. Additive, not absolute, because the per-worker done
    /// counts also accumulate — a sweep sharing one table across rows
    /// keeps a truthful done/total ratio.
    pub fn add_users_total(&self, total: u64) {
        self.users_total.fetch_add(total, Ordering::Relaxed);
    }

    /// The published expected total (0 until the runner knows it).
    pub fn users_total(&self) -> u64 {
        self.users_total.load(Ordering::Relaxed)
    }

    /// The slot worker `worker` publishes into. Indices wrap so a
    /// caller can never panic by over-provisioning workers.
    pub fn slot(&self, worker: usize) -> &ProgressSlot {
        &self.slots[worker % self.slots.len()]
    }

    /// Seconds since the table was created.
    pub fn elapsed_seconds(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    /// Sums every slot.
    pub fn totals(&self) -> ProgressTotals {
        let mut users_done = 0;
        let mut user_days = 0;
        let mut traces_failed = 0;
        for slot in self.slots.iter() {
            let (_, users, days, failed) = slot.read();
            users_done += users;
            user_days += days;
            traces_failed += failed;
        }
        ProgressTotals { users_done, user_days, traces_failed }
    }

    /// The one-line human rendering the sampler prints: users
    /// done/total, user-days/s throughput, an ETA extrapolated from
    /// the current rate, and the failure count when nonzero.
    pub fn render_line(&self) -> String {
        let totals = self.totals();
        let total = self.users_total();
        let elapsed = self.elapsed_seconds();
        let mut line = if total > 0 {
            format!("run: {}/{} users", totals.users_done, total)
        } else {
            format!("run: {} users", totals.users_done)
        };
        line.push_str(&format!(" · {} user-days", totals.user_days));
        if elapsed > 0.0 && totals.user_days > 0 {
            line.push_str(&format!(" · {:.1} user-days/s", totals.user_days as f64 / elapsed));
        }
        if total > totals.users_done && totals.users_done > 0 && elapsed > 0.0 {
            let rate = totals.users_done as f64 / elapsed;
            let eta = (total - totals.users_done) as f64 / rate;
            line.push_str(&format!(" · ETA {}", render_eta(eta)));
        }
        if totals.traces_failed > 0 {
            line.push_str(&format!(" · {} trace(s) failed", totals.traces_failed));
        }
        line
    }
}

fn render_eta(seconds: f64) -> String {
    if seconds >= 90.0 {
        // Round to whole seconds first, then split: formatting the
        // remainder with `{:02.0}` rounds it independently, so 119.7
        // would render as "1m60s" (and 3599.7 as "59m60s").
        let whole = seconds.round() as u64;
        if whole >= 3600 {
            format!("{}h{:02}m", whole / 3600, (whole % 3600) / 60)
        } else {
            format!("{}m{:02}s", whole / 60, whole % 60)
        }
    } else {
        format!("{seconds:.0}s")
    }
}

/// One observation of a [`ProgressTable`], as delivered to a
/// [`ProgressWatcher`] sink: the summed totals plus the published
/// expected total and the table's elapsed clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressUpdate {
    /// Summed per-worker totals at sampling time.
    pub totals: ProgressTotals,
    /// The published expected user total (0 until the runner knows it).
    pub users_total: u64,
    /// Seconds since the table was created.
    pub elapsed_seconds: f64,
}

impl ProgressTable {
    /// Samples the table into one [`ProgressUpdate`].
    pub fn update(&self) -> ProgressUpdate {
        ProgressUpdate {
            totals: self.totals(),
            users_total: self.users_total(),
            elapsed_seconds: self.elapsed_seconds(),
        }
    }
}

/// Background thread that samples a [`ProgressTable`] every interval
/// and hands each [`ProgressUpdate`] to a sink callback. This is the
/// one subscription primitive over the progress pipeline: the stderr
/// [`ProgressSampler`] and the fleet service's live job streams are
/// both sinks, so there is no second telemetry path.
///
/// [`ProgressWatcher::finish`] stops the thread after delivering one
/// final up-to-date sample, so a sink always sees the completed run.
#[derive(Debug)]
pub struct ProgressWatcher {
    stop: Arc<(std::sync::Mutex<bool>, std::sync::Condvar)>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ProgressWatcher {
    /// Spawns the watcher thread sampling every `every` into `sink`.
    pub fn start(
        table: Arc<ProgressTable>,
        every: Duration,
        mut sink: impl FnMut(ProgressUpdate) + Send + 'static,
    ) -> ProgressWatcher {
        let stop = Arc::new((std::sync::Mutex::new(false), std::sync::Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("tailwise-progress".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                loop {
                    let stopping = *lock.lock().expect("progress watcher stop flag");
                    sink(table.update());
                    if stopping {
                        break;
                    }
                    let guard = lock.lock().expect("progress watcher stop flag");
                    // Condvar wait (not sleep) so finish() interrupts a
                    // long interval promptly for its final sample.
                    let _unused = cvar.wait_timeout(guard, every);
                }
            })
            .expect("spawning the progress watcher thread failed");
        ProgressWatcher { stop, handle: Some(handle) }
    }

    /// Stops the watcher after one final sample and joins the thread.
    pub fn finish(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().expect("progress watcher stop flag") = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ProgressWatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Background thread that repaints [`ProgressTable::render_line`] on
/// stderr every sampling interval, overwriting itself with `\r`.
/// Implemented as a [`ProgressWatcher`] whose sink paints.
///
/// [`ProgressSampler::finish`] stops the thread and prints the final
/// state followed by a newline; dropping an unfinished sampler stops
/// the thread and just closes the line so later output starts clean.
#[derive(Debug)]
pub struct ProgressSampler {
    watcher: Option<ProgressWatcher>,
}

impl ProgressSampler {
    /// Spawns the sampler thread repainting every `every`.
    pub fn start(table: Arc<ProgressTable>, every: Duration) -> ProgressSampler {
        let paint_table = Arc::clone(&table);
        let mut width = 0;
        let watcher = ProgressWatcher::start(table, every, move |_update| {
            paint(&paint_table.render_line(), &mut width);
        });
        ProgressSampler { watcher: Some(watcher) }
    }

    /// Stops the sampler and prints the final progress state on its
    /// own completed line. (The watcher delivers a final sample before
    /// stopping, so the last paint reflects the finished run.)
    pub fn finish(mut self) {
        if let Some(watcher) = self.watcher.take() {
            watcher.finish();
        }
        eprintln!();
    }
}

impl Drop for ProgressSampler {
    fn drop(&mut self) {
        if let Some(watcher) = self.watcher.take() {
            watcher.finish();
            eprintln!();
        }
    }
}

/// Repaints the current line in place, padding over whatever the
/// previous (possibly longer) paint left behind.
fn paint(line: &str, width: &mut usize) {
    *width = (*width).max(line.len());
    let mut stderr = std::io::stderr().lock();
    let _ = write!(stderr, "\r{line:<pad$}", pad = *width);
    let _ = stderr.flush();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_accumulate_and_totals_sum() {
        let table = ProgressTable::new(2);
        table.add_users_total(10);
        table.slot(0).begin_shard(3);
        table.slot(0).add_user(2);
        table.slot(1).add_user(5);
        table.slot(1).add_failure();
        assert_eq!(table.slot(0).read(), (3, 1, 2, 0));
        assert_eq!(
            table.totals(),
            ProgressTotals { users_done: 2, user_days: 7, traces_failed: 1 }
        );
        assert_eq!(table.users_total(), 10);
    }

    #[test]
    fn slot_index_wraps_instead_of_panicking() {
        let table = ProgressTable::new(2);
        table.slot(5).add_user(1); // 5 % 2 == slot 1
        assert_eq!(table.slot(1).read().1, 1);
    }

    #[test]
    fn zero_worker_table_still_has_a_slot() {
        let table = ProgressTable::new(0);
        table.slot(0).add_user(1);
        assert_eq!(table.totals().users_done, 1);
    }

    #[test]
    fn render_line_names_users_days_and_failures() {
        let table = ProgressTable::new(1);
        table.add_users_total(8);
        table.slot(0).add_user(3);
        table.slot(0).add_user(4);
        table.slot(0).add_failure();
        let line = table.render_line();
        assert!(line.contains("2/8 users"), "{line}");
        assert!(line.contains("7 user-days"), "{line}");
        assert!(line.contains("user-days/s"), "{line}");
        assert!(line.contains("ETA"), "{line}");
        assert!(line.contains("1 trace(s) failed"), "{line}");
    }

    #[test]
    fn eta_renders_minutes_past_ninety_seconds() {
        assert_eq!(render_eta(12.0), "12s");
        assert_eq!(render_eta(125.0), "2m05s");
    }

    #[test]
    fn eta_never_renders_sixty_seconds_at_the_minute_boundary() {
        // 119.7 used to render "1m60s": the seconds remainder was
        // rounded up by the formatter after the minutes were floored.
        assert_eq!(render_eta(119.7), "2m00s");
        assert_eq!(render_eta(119.4), "1m59s");
        assert_eq!(render_eta(179.9), "3m00s");
        assert_eq!(render_eta(90.0), "1m30s");
    }

    #[test]
    fn eta_renders_hours_past_the_hour_boundary() {
        // The rounding-then-splitting order matters at the hour edge
        // just as it did at the minute edge: 3599.7 rounds to 3600
        // whole seconds and must pick the hour branch, never "59m60s".
        for (seconds, expect) in [
            (3599.7, "1h00m"),
            (3599.4, "59m59s"),
            (3600.0, "1h00m"),
            (3659.9, "1h01m"),
            (5400.0, "1h30m"),
            (7199.7, "2h00m"),
            (7200.0, "2h00m"),
            (86_400.0, "24h00m"),
        ] {
            assert_eq!(render_eta(seconds), expect, "render_eta({seconds})");
        }
    }

    #[test]
    fn watcher_delivers_updates_and_a_final_sample() {
        let table = Arc::new(ProgressTable::new(1));
        table.add_users_total(2);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let watcher =
            ProgressWatcher::start(Arc::clone(&table), Duration::from_millis(5), move |update| {
                sink_seen.lock().unwrap().push(update);
            });
        table.slot(0).add_user(1);
        std::thread::sleep(Duration::from_millis(15));
        table.slot(0).add_user(3);
        watcher.finish();
        let seen = seen.lock().unwrap();
        assert!(!seen.is_empty(), "watcher delivered no updates");
        let last = seen.last().unwrap();
        // finish() samples once more after the stop flag, so the final
        // update reflects everything published before finish().
        assert_eq!(last.totals.users_done, 2);
        assert_eq!(last.totals.user_days, 4);
        assert_eq!(last.users_total, 2);
    }

    #[test]
    fn watcher_stopped_before_its_first_sample_still_delivers_one() {
        // finish() immediately after start(), with an interval far
        // longer than the test: the condvar must interrupt the first
        // wait promptly (no full-interval stall) and the sink must
        // still see one final, current sample — never zero updates
        // and never a tick after finish() returns.
        let table = Arc::new(ProgressTable::new(1));
        table.add_users_total(5);
        table.slot(0).add_user(2);
        let seen = Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink_seen = Arc::clone(&seen);
        let started = std::time::Instant::now();
        let watcher =
            ProgressWatcher::start(Arc::clone(&table), Duration::from_secs(60), move |update| {
                sink_seen.lock().unwrap().push(update);
            });
        watcher.finish();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "finish() must interrupt the interval wait, not ride it out"
        );
        let count = {
            let seen = seen.lock().unwrap();
            assert!(!seen.is_empty(), "a stopped watcher still owes its final sample");
            let last = *seen.last().unwrap();
            assert_eq!(last.totals.users_done, 1);
            assert_eq!(last.totals.user_days, 2);
            assert_eq!(last.users_total, 5);
            seen.len()
        };
        // The thread is joined: nothing ticks after finish() returns.
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(seen.lock().unwrap().len(), count, "no stale tick after finish()");
    }

    #[test]
    fn sampler_paints_and_finishes_cleanly() {
        let table = Arc::new(ProgressTable::new(1));
        table.add_users_total(2);
        let sampler = ProgressSampler::start(Arc::clone(&table), Duration::from_millis(5));
        table.slot(0).add_user(1);
        std::thread::sleep(Duration::from_millis(15));
        table.slot(0).add_user(1);
        sampler.finish();
        // All we can assert portably is that finish() joined the thread
        // and the table kept counting.
        assert_eq!(table.totals().users_done, 2);
    }
}
