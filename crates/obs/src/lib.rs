//! Hand-rolled observability for the fleet stack: span timing, named
//! monotonic counters and gauges on relaxed atomics, and a lock-free
//! per-shard progress table with a stderr sampler thread.
//!
//! Like `tailwise-scenfile`, this crate pulls in nothing from crates.io
//! — everything is built on `std` atomics, `Instant`, and one sampler
//! thread. Two properties are load-bearing for the rest of the
//! workspace:
//!
//! * **Free when off.** [`NullRecorder`] reports `enabled() == false`,
//!   so [`span`] never reads the clock, [`Counter`] handles it hands
//!   out are detached no-ops, and the hot path reduces to one
//!   predictable branch per probe site.
//! * **Inert when on.** Recording only *observes*: nothing a
//!   [`Recorder`] or [`ProgressTable`] does feeds back into simulation
//!   state, so reports stay bit-identical with observability on or off
//!   at any thread count. The fleet crate's tests pin this invariant.
//!
//! The typical wiring is an [`Obs`] handle — a recorder reference plus
//! an optional progress table — threaded by value through the runner:
//!
//! ```
//! use tailwise_obs::{span, Obs, Recorder, StatsRecorder};
//!
//! let recorder = StatsRecorder::new();
//! let obs = Obs { recorder: &recorder, progress: None };
//! {
//!     let _guard = span(obs.recorder, "simulate");
//!     // … work …
//! } // guard drop records the elapsed nanoseconds
//! obs.recorder.counter("users_simulated").incr();
//! let snapshot = recorder.snapshot();
//! assert_eq!(snapshot.counter("users_simulated"), 1);
//! assert_eq!(snapshot.spans["simulate"].count, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod progress;
mod recorder;

pub use progress::{
    ProgressSampler, ProgressSlot, ProgressTable, ProgressTotals, ProgressUpdate, ProgressWatcher,
};
pub use recorder::{
    span, Counter, NullRecorder, Recorder, Snapshot, SpanGuard, SpanStat, StatsRecorder,
};

/// Everything a run needs to observe itself: a recorder for spans,
/// counters, and worker-busy accounting, plus an optional live progress
/// table workers publish into.
///
/// `Obs` is `Copy` so worker closures capture it by value without
/// lifetime gymnastics. [`Obs::none`] is the zero-cost default used by
/// every un-instrumented entry point.
#[derive(Clone, Copy)]
pub struct Obs<'a> {
    /// Span / counter / gauge sink. [`NullRecorder`] when observation
    /// is off.
    pub recorder: &'a dyn Recorder,
    /// Live progress table, when a `--progress` style consumer wants
    /// per-shard `(shard, users_done, user_days, traces_failed)`.
    pub progress: Option<&'a ProgressTable>,
}

impl Obs<'static> {
    /// The disabled handle: a [`NullRecorder`] and no progress table.
    pub fn none() -> Obs<'static> {
        static NULL: NullRecorder = NullRecorder;
        Obs { recorder: &NULL, progress: None }
    }
}

impl std::fmt::Debug for Obs<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.recorder.enabled())
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_disabled_and_detached() {
        let obs = Obs::none();
        assert!(!obs.recorder.enabled());
        assert!(obs.progress.is_none());
        // Counters from the null recorder swallow updates.
        let c = obs.recorder.counter("anything");
        c.incr();
        c.add(41);
        assert_eq!(obs.recorder.snapshot().counter("anything"), 0);
    }

    #[test]
    fn debug_shows_enablement_not_contents() {
        let recorder = StatsRecorder::new();
        let obs = Obs { recorder: &recorder, progress: None };
        let text = format!("{obs:?}");
        assert!(text.contains("enabled: true"), "{text}");
        assert!(text.contains("progress: false"), "{text}");
    }
}
