//! The Learn-α two-layer forecaster (Monteleoni & Jaakkola, NIPS 2003) —
//! the outer layer of the paper's appendix.
//!
//! Fixed-Share needs a switching rate α, and "it is hard to choose a good
//! α. In reality, α should not be a fixed value since the network traffic
//! pattern may change rapidly or remain stationary." Learn-α runs `m`
//! *α-experts* — complete Fixed-Share forecasters, each with its own α —
//! and learns a distribution over them with plain exponential weights:
//!
//! ```text
//! T_t      = Σ_j Σ_i p'_t(j) p_{t,j}(i) T_i            (eq. 3)
//! p'_t(j)  ∝ p'_{t−1}(j) e^{−L(α_j, t−1)}              (eq. 4)
//! L(α_j,t) = −log Σ_i p_{t,j}(i) e^{−L(i,t)}            (eq. 5)
//! ```
//!
//! Note the `t−1` in eq. 4: the α-weights used at time `t` are updated with
//! the *previous* round's per-α mixture losses ("the loss function value
//! for the current iteration is calculated from information learned at time
//! t−1"). The implementation preserves that one-step lag.

use crate::fixed_share::FixedShare;

/// A Learn-α forecaster: `m` Fixed-Share sub-forecasters over `n` experts.
#[derive(Debug, Clone)]
pub struct LearnAlpha {
    subs: Vec<FixedShare>,
    alphas: Vec<f64>,
    /// log-weights of the α-experts (log-space for stability).
    log_weights: Vec<f64>,
    /// Per-α mixture losses of the previous round (eq. 4's `t−1`).
    pending_losses: Option<Vec<f64>>,
    updates: u64,
}

impl LearnAlpha {
    /// Creates a forecaster with `n` value-experts and the given α grid.
    ///
    /// # Panics
    /// Panics if the grid is empty, any α is outside `[0, 1]`, or `n == 0`.
    pub fn new(n: usize, alphas: &[f64]) -> LearnAlpha {
        assert!(!alphas.is_empty(), "need at least one alpha expert");
        let subs: Vec<FixedShare> = alphas.iter().map(|&a| FixedShare::new(n, a)).collect();
        let m = alphas.len();
        LearnAlpha {
            subs,
            alphas: alphas.to_vec(),
            log_weights: vec![-(m as f64).ln(); m],
            pending_losses: None,
            updates: 0,
        }
    }

    /// Creates a forecaster with the default α grid: `m` values evenly
    /// spaced in `(0, 0.5]`, plus α = 0 (the stationary hypothesis).
    pub fn with_default_grid(n: usize, m: usize) -> LearnAlpha {
        assert!(m >= 1, "need at least one alpha expert");
        let mut alphas = vec![0.0];
        for j in 1..=m {
            alphas.push(0.5 * j as f64 / m as f64);
        }
        Self::new(n, &alphas)
    }

    /// Number of value-experts.
    pub fn n(&self) -> usize {
        self.subs[0].n()
    }

    /// The α grid.
    pub fn alphas(&self) -> &[f64] {
        &self.alphas
    }

    /// Updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// Normalized weights over the α-experts.
    pub fn alpha_weights(&self) -> Vec<f64> {
        let max = self.log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let unnorm: Vec<f64> = self.log_weights.iter().map(|&lw| (lw - max).exp()).collect();
        let z: f64 = unnorm.iter().sum();
        unnorm.into_iter().map(|w| w / z).collect()
    }

    /// The effective α: the α-weight-averaged switching rate (diagnostic).
    pub fn effective_alpha(&self) -> f64 {
        self.alpha_weights().iter().zip(&self.alphas).map(|(w, a)| w * a).sum()
    }

    /// Combined weights over the value-experts:
    /// `P(i) = Σ_j p'(j) · p_j(i)` — the distribution eq. 3 predicts with.
    pub fn combined_weights(&self) -> Vec<f64> {
        let aw = self.alpha_weights();
        let n = self.n();
        let mut out = vec![0.0; n];
        for (j, sub) in self.subs.iter().enumerate() {
            for (i, &w) in sub.weights().iter().enumerate() {
                out[i] += aw[j] * w;
            }
        }
        out
    }

    /// Predicts the two-layer weighted average of per-expert `values`
    /// (eq. 3).
    pub fn predict(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.n(), "one value per expert");
        self.combined_weights().iter().zip(values).map(|(w, v)| w * v).sum()
    }

    /// Applies one round of per-expert losses to both layers.
    ///
    /// Order of operations (preserving the paper's `t−1` lag):
    /// 1. fold the *previous* round's per-α mixture losses into the
    ///    α-weights (eq. 4);
    /// 2. compute this round's per-α mixture losses from the sub-forecasters'
    ///    current weights (eq. 5) while updating each sub-forecaster.
    pub fn update(&mut self, losses: &[f64]) {
        assert_eq!(losses.len(), self.n(), "one loss per expert");
        if let Some(prev) = self.pending_losses.take() {
            for (lw, l) in self.log_weights.iter_mut().zip(&prev) {
                *lw -= l;
            }
            // Renormalize in log space occasionally to avoid drift.
            let max = self.log_weights.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for lw in &mut self.log_weights {
                *lw -= max;
            }
        }
        let mut current = Vec::with_capacity(self.subs.len());
        for sub in &mut self.subs {
            current.push(sub.update(losses));
        }
        self.pending_losses = Some(current);
        self.updates += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_shape() {
        let la = LearnAlpha::with_default_grid(5, 4);
        assert_eq!(la.alphas(), &[0.0, 0.125, 0.25, 0.375, 0.5]);
        assert_eq!(la.n(), 5);
        let aw = la.alpha_weights();
        assert_eq!(aw.len(), 5);
        assert!((aw.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(aw.iter().all(|&w| (w - 0.2).abs() < 1e-12));
    }

    #[test]
    fn alpha_weights_stay_normalized() {
        let mut la = LearnAlpha::with_default_grid(4, 6);
        for round in 0..200 {
            let losses: Vec<f64> = (0..4).map(|i| ((i + round) % 4) as f64).collect();
            la.update(&losses);
            let aw = la.alpha_weights();
            assert!((aw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        assert_eq!(la.updates(), 200);
    }

    #[test]
    fn stationary_losses_favor_small_alpha() {
        // One expert is always best: sharing only leaks weight away, so the
        // α = 0 expert should win.
        let mut la = LearnAlpha::new(3, &[0.0, 0.3]);
        for _ in 0..300 {
            la.update(&[0.0, 2.0, 2.0]);
        }
        let aw = la.alpha_weights();
        assert!(aw[0] > aw[1], "stationary data must favor alpha=0: {aw:?}");
    }

    #[test]
    fn switching_losses_favor_large_alpha() {
        // Best expert flips every 5 rounds: a switching α should win.
        let mut la = LearnAlpha::new(2, &[0.0, 0.3]);
        for round in 0..300 {
            let losses = if (round / 5) % 2 == 0 { [0.0, 2.0] } else { [2.0, 0.0] };
            la.update(&losses);
        }
        let aw = la.alpha_weights();
        assert!(aw[1] > aw[0], "switching data must favor alpha>0: {aw:?}");
    }

    #[test]
    fn prediction_tracks_the_best_expert() {
        let mut la = LearnAlpha::with_default_grid(3, 5);
        let values = [1.0, 5.0, 9.0];
        // Expert 1 (value 5.0) always best.
        for _ in 0..100 {
            la.update(&[3.0, 0.0, 3.0]);
        }
        let pred = la.predict(&values);
        assert!((pred - 5.0).abs() < 0.5, "prediction {pred}");
    }

    #[test]
    fn combined_weights_are_a_distribution() {
        let mut la = LearnAlpha::with_default_grid(6, 3);
        for _ in 0..20 {
            la.update(&[0.1, 0.5, 0.3, 0.9, 0.0, 0.2]);
        }
        let cw = la.combined_weights();
        assert!((cw.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(cw.iter().all(|&w| w >= 0.0));
    }

    #[test]
    fn effective_alpha_moves_with_the_evidence() {
        let mut stationary = LearnAlpha::with_default_grid(2, 8);
        let mut switching = LearnAlpha::with_default_grid(2, 8);
        for round in 0..200 {
            stationary.update(&[0.0, 2.0]);
            let losses = if (round / 3) % 2 == 0 { [0.0, 2.0] } else { [2.0, 0.0] };
            switching.update(&losses);
        }
        assert!(
            switching.effective_alpha() > stationary.effective_alpha(),
            "switching {} vs stationary {}",
            switching.effective_alpha(),
            stationary.effective_alpha()
        );
    }

    #[test]
    fn first_update_has_no_pending_alpha_loss() {
        // The α-layer must lag by one round; after a single update the
        // α-weights are still uniform.
        let mut la = LearnAlpha::new(2, &[0.0, 0.5]);
        la.update(&[0.0, 10.0]);
        let aw = la.alpha_weights();
        assert!((aw[0] - 0.5).abs() < 1e-12 && (aw[1] - 0.5).abs() < 1e-12);
        // Round 1's mixture losses are identical across α (both sub-banks
        // start uniform), so even after folding them in the α-weights stay
        // tied; the first *informative* α-losses come from round 2 and land
        // in the weights at round 3.
        la.update(&[0.0, 10.0]);
        let aw = la.alpha_weights();
        assert!((aw[0] - aw[1]).abs() < 1e-12);
        la.update(&[0.0, 10.0]);
        let aw = la.alpha_weights();
        assert!((aw[0] - aw[1]).abs() > 1e-9);
    }

    #[test]
    #[should_panic(expected = "need at least one alpha expert")]
    fn rejects_empty_grid() {
        let _ = LearnAlpha::new(2, &[]);
    }
}
