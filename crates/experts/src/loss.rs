//! The MakeActive loss function (§5.2).
//!
//! Each expert proposes a session-delay bound `T_i`. After every batching
//! round the algorithm scores each expert *counterfactually*: had we used
//! `T_i`, the sessions that arrived within `T_i` of the first one would have
//! been buffered, each delayed until the bound elapsed. The paper's loss
//!
//! ```text
//! L(i) = γ · Delay(T_i) + 1/b ,   Delay(T_i) = Σ_j (T_i − t_j)
//! ```
//!
//! trades total added delay (first term) against batching effectiveness
//! (`1/b` shrinks as more sessions share one promotion). γ = 0.008 is the
//! paper's choice ("it gave the best energy-saving results among the values
//! we tried"); the `ablation_gamma` bench sweeps it.

/// Parameters of the MakeActive loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakeActiveLoss {
    /// Scale between delay cost and batching reward. Paper value: 0.008
    /// (per second of aggregate delay).
    pub gamma: f64,
}

impl Default for MakeActiveLoss {
    fn default() -> Self {
        MakeActiveLoss { gamma: 0.008 }
    }
}

impl MakeActiveLoss {
    /// Creates a loss with the given γ.
    pub fn new(gamma: f64) -> MakeActiveLoss {
        assert!(gamma > 0.0, "gamma must be positive (got {gamma})");
        MakeActiveLoss { gamma }
    }

    /// Scores one expert's proposed bound against an observed batching round.
    ///
    /// `proposed_bound` is the expert's `T_i` in seconds. `arrival_offsets`
    /// are the observed session arrival times in seconds *relative to the
    /// first session of the round* (so the first entry is 0.0); they must be
    /// non-decreasing and non-negative.
    ///
    /// Counterfactual semantics: sessions with offset `≤ T_i` would have
    /// been buffered (`b(i)` of them, always ≥ 1 since the first offset is
    /// 0); each would have waited `T_i − offset`. Sessions arriving after
    /// the bound play no role in this expert's loss — under its policy the
    /// radio would already be Active when they arrived.
    pub fn loss(&self, proposed_bound: f64, arrival_offsets: &[f64]) -> f64 {
        assert!(
            !arrival_offsets.is_empty(),
            "a batching round has at least the session that opened it"
        );
        debug_assert!(arrival_offsets[0] >= 0.0);
        debug_assert!(arrival_offsets.windows(2).all(|w| w[0] <= w[1]));
        let t = proposed_bound.max(0.0);
        let mut buffered = 0usize;
        let mut delay_sum = 0.0;
        for &off in arrival_offsets {
            if off <= t {
                buffered += 1;
                delay_sum += t - off;
            } else {
                break;
            }
        }
        // The first session (offset 0) is always within any non-negative
        // bound, so buffered >= 1.
        self.gamma * delay_sum + 1.0 / buffered as f64
    }

    /// Vectorized [`loss`](Self::loss) over a bank of proposed bounds.
    pub fn losses(&self, proposed_bounds: &[f64], arrival_offsets: &[f64]) -> Vec<f64> {
        proposed_bounds.iter().map(|&t| self.loss(t, arrival_offsets)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_session_prefers_zero_delay() {
        // With only one session, batching buys nothing: loss is minimized
        // by the smallest bound.
        let l = MakeActiveLoss::default();
        let offsets = [0.0];
        assert!(l.loss(0.0, &offsets) < l.loss(5.0, &offsets));
        assert_eq!(l.loss(0.0, &offsets), 1.0); // 1/b with b=1
    }

    #[test]
    fn batching_two_sessions_beats_one_when_gamma_small() {
        // Two sessions 1 s apart. Bound 1.0 buffers both: loss
        // γ·(1+0) + 1/2; bound 0.5 buffers one: γ·0.5 + 1.
        let l = MakeActiveLoss::new(0.008);
        let offsets = [0.0, 1.0];
        assert!(l.loss(1.0, &offsets) < l.loss(0.5, &offsets));
    }

    #[test]
    fn huge_bounds_eventually_lose() {
        // Past the last arrival, extra bound only adds delay.
        let l = MakeActiveLoss::new(0.008);
        let offsets = [0.0, 1.0, 2.0];
        let at_last = l.loss(2.0, &offsets);
        let way_past = l.loss(200.0, &offsets);
        assert!(way_past > at_last);
    }

    #[test]
    fn loss_matches_paper_formula_when_all_buffered() {
        // b sessions all within the bound: L = γ·Σ(T − t_j) + 1/b.
        let gamma = 0.01;
        let l = MakeActiveLoss::new(gamma);
        let offsets = [0.0, 2.0, 3.0];
        let t = 5.0;
        let expect = gamma * ((5.0 - 0.0) + (5.0 - 2.0) + (5.0 - 3.0)) + 1.0 / 3.0;
        assert!((l.loss(t, &offsets) - expect).abs() < 1e-12);
    }

    #[test]
    fn sessions_past_the_bound_are_excluded() {
        let l = MakeActiveLoss::new(1.0);
        let offsets = [0.0, 10.0];
        // Bound 1.0 only buffers the first session.
        let expect = 1.0 * (1.0 - 0.0) + 1.0 / 1.0;
        assert!((l.loss(1.0, &offsets) - expect).abs() < 1e-12);
    }

    #[test]
    fn negative_bound_clamps_to_zero() {
        let l = MakeActiveLoss::default();
        assert_eq!(l.loss(-3.0, &[0.0]), l.loss(0.0, &[0.0]));
    }

    #[test]
    fn losses_vectorizes() {
        let l = MakeActiveLoss::default();
        let bounds = [0.0, 1.0, 2.0];
        let offsets = [0.0, 1.5];
        let v = l.losses(&bounds, &offsets);
        assert_eq!(v.len(), 3);
        for (i, &b) in bounds.iter().enumerate() {
            assert_eq!(v[i], l.loss(b, &offsets));
        }
    }

    #[test]
    #[should_panic(expected = "gamma must be positive")]
    fn rejects_nonpositive_gamma() {
        let _ = MakeActiveLoss::new(0.0);
    }

    #[test]
    #[should_panic(expected = "at least the session")]
    fn rejects_empty_round() {
        MakeActiveLoss::default().loss(1.0, &[]);
    }
}
