//! # tailwise-experts
//!
//! The bank-of-experts online learning machinery behind MakeActive's
//! learned delay bound (appendix of Deng & Balakrishnan, CoNEXT 2012).
//!
//! * [`fixed_share`] — the Fixed-Share forecaster (Herbster & Warmuth
//!   1998): exponential weights plus an α-share step that tracks a
//!   *switching* best expert;
//! * [`learn_alpha`] — Learn-α (Monteleoni & Jaakkola 2003): a second layer
//!   of experts over α itself, eliminating the hand-tuned switching rate
//!   (paper appendix eqs. 3–5);
//! * [`loss`] — the MakeActive loss `L(i) = γ·Delay(T_i) + 1/b` (§5.2);
//! * [`baselines`] — hindsight comparators (best static expert, best
//!   k-switch sequence) and regret helpers used to validate the learners.
//!
//! The crate is domain-agnostic: nothing here knows about radios or
//! packets, so the learners are reusable and testable in isolation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod fixed_share;
pub mod learn_alpha;
pub mod loss;

pub use baselines::{
    best_static_expert, best_switching_sequence, cumulative_losses, static_regret,
};
pub use fixed_share::FixedShare;
pub use learn_alpha::LearnAlpha;
pub use loss::MakeActiveLoss;

#[cfg(test)]
mod proptests {
    //! Property-based invariants of the learning machinery.

    use proptest::prelude::*;

    use crate::fixed_share::FixedShare;
    use crate::learn_alpha::LearnAlpha;
    use crate::loss::MakeActiveLoss;

    proptest! {
        #[test]
        fn fixed_share_weights_always_sum_to_one(
            n in 1usize..8,
            alpha in 0.0f64..1.0,
            rounds in prop::collection::vec(
                prop::collection::vec(0.0f64..10.0, 8), 1..40),
        ) {
            let mut f = FixedShare::new(n, alpha);
            for r in &rounds {
                f.update(&r[..n]);
                let sum: f64 = f.weights().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(f.weights().iter().all(|&w| w >= 0.0));
            }
        }

        #[test]
        fn mixture_loss_bounded_by_min_and_max(
            n in 2usize..6,
            losses in prop::collection::vec(0.0f64..100.0, 6),
        ) {
            let mut f = FixedShare::new(n, 0.1);
            let ls = &losses[..n];
            let ml = f.update(ls);
            let lo = ls.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = ls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(ml >= lo - 1e-9 && ml <= hi + 1e-9);
        }

        #[test]
        fn predictions_stay_in_value_hull(
            n in 1usize..6,
            alpha in 0.0f64..0.5,
            values in prop::collection::vec(-100.0f64..100.0, 6),
            rounds in prop::collection::vec(
                prop::collection::vec(0.0f64..5.0, 6), 0..20),
        ) {
            let mut f = FixedShare::new(n, alpha);
            for r in &rounds {
                f.update(&r[..n]);
            }
            let vals = &values[..n];
            let pred = f.predict(vals);
            let lo = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        }

        #[test]
        fn learn_alpha_predictions_stay_in_value_hull(
            values in prop::collection::vec(0.0f64..20.0, 4),
            rounds in prop::collection::vec(
                prop::collection::vec(0.0f64..5.0, 4), 0..15),
        ) {
            let mut la = LearnAlpha::with_default_grid(4, 3);
            for r in &rounds {
                la.update(r);
            }
            let pred = la.predict(&values);
            let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(pred >= lo - 1e-9 && pred <= hi + 1e-9);
        }

        #[test]
        fn makeactive_loss_is_nonnegative_and_bounded_below_by_inv_b(
            bound in 0.0f64..30.0,
            offsets in prop::collection::vec(0.0f64..30.0, 1..20),
        ) {
            let mut offs = offsets;
            offs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            offs[0] = 0.0;
            let l = MakeActiveLoss::default();
            let v = l.loss(bound, &offs);
            prop_assert!(v > 0.0);
            prop_assert!(v >= 1.0 / offs.len() as f64 - 1e-12);
        }

        #[test]
        fn makeactive_loss_gamma_scales_delay_term(
            bound in 0.1f64..30.0,
            offsets in prop::collection::vec(0.0f64..30.0, 1..10),
        ) {
            let mut offs = offsets;
            offs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            offs[0] = 0.0;
            let l1 = MakeActiveLoss::new(0.01).loss(bound, &offs);
            let l2 = MakeActiveLoss::new(0.02).loss(bound, &offs);
            // Doubling gamma doubles the delay part: l2 - 1/b = 2(l1 - 1/b).
            let b = offs.iter().filter(|&&o| o <= bound).count() as f64;
            prop_assert!(((l2 - 1.0 / b) - 2.0 * (l1 - 1.0 / b)).abs() < 1e-9);
        }
    }
}
