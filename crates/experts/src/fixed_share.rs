//! The Fixed-Share forecaster (Herbster & Warmuth, "Tracking the best
//! expert", 1998) — the inner layer of the paper's appendix.
//!
//! A bank of `n` experts each proposes a value. The forecaster keeps a
//! probability vector `p_t` over experts and predicts the weighted average.
//! After observing per-expert losses it performs the two-step update the
//! appendix writes in one line:
//!
//! ```text
//! p_t(i) = (1/Z_t) Σ_j p_{t-1}(j) e^{−L(j, t−1)} P(i | j, α)
//! P(i|j,α) = 1−α          if i = j
//!          = α / (n−1)    otherwise
//! ```
//!
//! i.e. a Bayes/exponential-weights step followed by an α-share step that
//! redistributes a fraction of every expert's weight to the others, letting
//! the forecaster *re-pick* the best expert when the traffic pattern shifts
//! ("suitable for cases where the observation may change rapidly, which
//! matches the bursty character of network traffic").
//!
//! Numerics: weights are renormalized every update and losses are shifted
//! by their minimum before exponentiation, so the forecaster is stable for
//! arbitrarily large losses.

/// A Fixed-Share forecaster over `n` experts.
#[derive(Debug, Clone)]
pub struct FixedShare {
    alpha: f64,
    weights: Vec<f64>,
    updates: u64,
}

impl FixedShare {
    /// Creates a forecaster with uniform initial weights.
    ///
    /// # Panics
    /// Panics if `n == 0` or `alpha ∉ [0, 1]`.
    pub fn new(n: usize, alpha: f64) -> FixedShare {
        assert!(n > 0, "need at least one expert");
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1], got {alpha}");
        FixedShare { alpha, weights: vec![1.0 / n as f64; n], updates: 0 }
    }

    /// Number of experts.
    pub fn n(&self) -> usize {
        self.weights.len()
    }

    /// The switching parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Updates performed so far.
    pub fn updates(&self) -> u64 {
        self.updates
    }

    /// The current probability vector over experts (sums to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Predicts the weighted average of per-expert `values`.
    ///
    /// # Panics
    /// Panics if `values.len() != n`.
    pub fn predict(&self, values: &[f64]) -> f64 {
        assert_eq!(values.len(), self.weights.len(), "one value per expert");
        self.weights.iter().zip(values).map(|(w, v)| w * v).sum()
    }

    /// Index and weight of the currently heaviest expert.
    pub fn leader(&self) -> (usize, f64) {
        let (i, w) = self
            .weights
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("weights are finite"))
            .expect("n >= 1");
        (i, *w)
    }

    /// Applies one loss observation (one value per expert).
    ///
    /// Returns the *mixture loss* `−log Σ_i p(i) e^{−L(i)}` of this round —
    /// exactly the per-α loss `L(α_j, t)` that the Learn-α outer layer
    /// consumes (appendix eq. 5).
    ///
    /// # Panics
    /// Panics if `losses.len() != n` or any loss is not finite.
    pub fn update(&mut self, losses: &[f64]) -> f64 {
        assert_eq!(losses.len(), self.weights.len(), "one loss per expert");
        assert!(losses.iter().all(|l| l.is_finite()), "losses must be finite");
        let n = self.weights.len();
        let min_loss = losses.iter().copied().fold(f64::INFINITY, f64::min);

        // Bayes step (shifted by min_loss for numerical stability; the
        // shift cancels in the normalization).
        let mut posterior: Vec<f64> =
            self.weights.iter().zip(losses).map(|(w, l)| w * (-(l - min_loss)).exp()).collect();
        let z: f64 = posterior.iter().sum();
        debug_assert!(z > 0.0, "posterior mass vanished");
        for w in &mut posterior {
            *w /= z;
        }
        // Mixture loss, un-shifting the stabilizer: z = Σ w_i e^{-(L_i - min)}
        // with Σ w_i = 1, so −log Σ w_i e^{−L_i} = min_loss − log z.
        let mixture_loss = min_loss - z.ln();

        // Share step.
        if n > 1 && self.alpha > 0.0 {
            let share = self.alpha / (n as f64 - 1.0);
            let total: f64 = 1.0; // posterior is normalized
            for w in posterior.iter_mut() {
                *w = (1.0 - self.alpha) * *w + share * (total - *w);
            }
        }
        self.weights = posterior;
        self.updates += 1;
        mixture_loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_prob_vector(w: &[f64]) {
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-9, "weights {w:?}");
        assert!(w.iter().all(|&x| (0.0..=1.0 + 1e-12).contains(&x)));
    }

    #[test]
    fn starts_uniform() {
        let f = FixedShare::new(4, 0.1);
        assert_eq!(f.weights(), &[0.25; 4]);
        assert_eq!(f.n(), 4);
        assert_eq!(f.updates(), 0);
    }

    #[test]
    fn weights_remain_probability_vector() {
        let mut f = FixedShare::new(5, 0.05);
        for round in 0..100 {
            let losses: Vec<f64> = (0..5).map(|i| ((i + round) % 5) as f64).collect();
            f.update(&losses);
            assert_prob_vector(f.weights());
        }
        assert_eq!(f.updates(), 100);
    }

    #[test]
    fn concentrates_on_consistently_best_expert() {
        let mut f = FixedShare::new(3, 0.01);
        for _ in 0..50 {
            f.update(&[1.0, 0.0, 1.0]);
        }
        let (leader, w) = f.leader();
        assert_eq!(leader, 1);
        assert!(w > 0.9, "leader weight {w}");
    }

    #[test]
    fn alpha_floor_prevents_total_collapse() {
        // With α > 0 every expert retains at least α/(n−1) of the mass the
        // others shed, so weights never hit zero and recovery stays possible.
        let mut f = FixedShare::new(3, 0.2);
        for _ in 0..1000 {
            f.update(&[0.0, 10.0, 10.0]);
        }
        for &w in f.weights() {
            assert!(w > 1e-3, "weights {:?}", f.weights());
        }
    }

    #[test]
    fn tracks_a_switching_best_expert() {
        // Expert 0 is best for 30 rounds, then expert 2. Fixed-share should
        // move its leader; pure exponential weights (α=0) move much slower.
        let run = |alpha: f64| {
            let mut f = FixedShare::new(3, alpha);
            for _ in 0..30 {
                f.update(&[0.0, 1.0, 1.0]);
            }
            for _ in 0..10 {
                f.update(&[1.0, 1.0, 0.0]);
            }
            f.weights()[2]
        };
        let shared = run(0.1);
        let unshared = run(0.0);
        assert!(shared > 0.5, "fixed-share weight on new leader {shared}");
        assert!(shared > unshared, "sharing must speed up switching: {shared} vs {unshared}");
    }

    #[test]
    fn alpha_zero_is_exponential_weights() {
        // Closed form: p(i) ∝ exp(−Σ L(i)).
        let mut f = FixedShare::new(2, 0.0);
        f.update(&[1.0, 2.0]);
        f.update(&[1.0, 2.0]);
        let expect0 = 1.0 / (1.0 + (-2.0f64).exp());
        assert!((f.weights()[0] - expect0).abs() < 1e-9);
    }

    #[test]
    fn prediction_is_weighted_average() {
        let mut f = FixedShare::new(2, 0.0);
        assert_eq!(f.predict(&[2.0, 4.0]), 3.0);
        for _ in 0..100 {
            f.update(&[0.0, 5.0]);
        }
        // Nearly all weight on expert 0.
        assert!((f.predict(&[2.0, 4.0]) - 2.0).abs() < 1e-3);
    }

    #[test]
    fn update_returns_mixture_loss() {
        let mut f = FixedShare::new(2, 0.0);
        // Uniform weights, losses [0, 0] → mixture loss −log(1) = 0.
        assert!((f.update(&[0.0, 0.0]) - 0.0).abs() < 1e-12);
        // Uniform again is gone; rebuild: new forecaster, losses [l, l]
        // → mixture loss l regardless of weights.
        let mut f = FixedShare::new(3, 0.3);
        let ml = f.update(&[2.5, 2.5, 2.5]);
        assert!((ml - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mixture_loss_is_bounded_by_extremes() {
        let mut f = FixedShare::new(4, 0.1);
        let losses = [0.5, 1.5, 3.0, 0.2];
        let ml = f.update(&losses);
        assert!((0.2 - 1e-12..=3.0 + 1e-12).contains(&ml));
    }

    #[test]
    fn survives_huge_losses() {
        let mut f = FixedShare::new(3, 0.05);
        for _ in 0..50 {
            f.update(&[1e6, 2e6, 1e6 + 1.0]);
        }
        assert_prob_vector(f.weights());
        assert_eq!(f.leader().0, 0);
    }

    #[test]
    fn single_expert_degenerates_gracefully() {
        let mut f = FixedShare::new(1, 0.5);
        f.update(&[3.0]);
        assert_eq!(f.weights(), &[1.0]);
        assert_eq!(f.predict(&[7.0]), 7.0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in [0,1]")]
    fn rejects_bad_alpha() {
        let _ = FixedShare::new(2, 1.5);
    }

    #[test]
    #[should_panic(expected = "one loss per expert")]
    fn rejects_wrong_loss_arity() {
        FixedShare::new(2, 0.1).update(&[1.0]);
    }

    #[test]
    #[should_panic(expected = "losses must be finite")]
    fn rejects_nan_losses() {
        FixedShare::new(2, 0.1).update(&[f64::NAN, 0.0]);
    }
}
