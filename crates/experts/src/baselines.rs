//! Hindsight baselines and regret accounting for the expert forecasters.
//!
//! Online-learning guarantees are stated against the *best static expert in
//! hindsight* (and, for switching algorithms like Fixed-Share, the best
//! sequence of experts). These helpers compute those comparators from a
//! recorded loss matrix so tests and the `bench_experts` harness can verify
//! that the forecasters' regret behaves.

/// Total loss of each expert over a recorded sequence.
///
/// `loss_rounds[t][i]` is expert `i`'s loss at round `t`. All rounds must
/// have the same arity.
pub fn cumulative_losses(loss_rounds: &[Vec<f64>]) -> Vec<f64> {
    if loss_rounds.is_empty() {
        return Vec::new();
    }
    let n = loss_rounds[0].len();
    let mut acc = vec![0.0; n];
    for round in loss_rounds {
        assert_eq!(round.len(), n, "inconsistent expert count across rounds");
        for (a, l) in acc.iter_mut().zip(round) {
            *a += l;
        }
    }
    acc
}

/// Index and total loss of the best static expert in hindsight.
pub fn best_static_expert(loss_rounds: &[Vec<f64>]) -> Option<(usize, f64)> {
    let totals = cumulative_losses(loss_rounds);
    totals
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("losses are finite"))
        .map(|(i, &l)| (i, l))
}

/// Loss of the best *sequence* of experts with at most `k` switches —
/// the comparator Fixed-Share is designed for. Dynamic program over
/// (round, expert, switches used); O(T · n² · k).
pub fn best_switching_sequence(loss_rounds: &[Vec<f64>], k: usize) -> Option<f64> {
    if loss_rounds.is_empty() {
        return None;
    }
    let n = loss_rounds[0].len();
    // cost[s][i] = best total loss through the current round ending at
    // expert i having used s switches.
    let mut cost = vec![vec![f64::INFINITY; n]; k + 1];
    for i in 0..n {
        cost[0][i] = loss_rounds[0][i];
    }
    for round in &loss_rounds[1..] {
        let mut next = vec![vec![f64::INFINITY; n]; k + 1];
        for s in 0..=k {
            for i in 0..n {
                if cost[s][i].is_finite() {
                    // Stay.
                    let stay = cost[s][i] + round[i];
                    if stay < next[s][i] {
                        next[s][i] = stay;
                    }
                    // Switch.
                    if s < k {
                        for j in 0..n {
                            if j != i {
                                let sw = cost[s][i] + round[j];
                                if sw < next[s + 1][j] {
                                    next[s + 1][j] = sw;
                                }
                            }
                        }
                    }
                }
            }
        }
        cost = next;
    }
    cost.into_iter()
        .flatten()
        .filter(|c| c.is_finite())
        .min_by(|a, b| a.partial_cmp(b).expect("finite"))
}

/// Regret of a forecaster that incurred `forecaster_loss` total against the
/// best static expert on the same rounds.
pub fn static_regret(forecaster_loss: f64, loss_rounds: &[Vec<f64>]) -> Option<f64> {
    best_static_expert(loss_rounds).map(|(_, best)| forecaster_loss - best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed_share::FixedShare;

    #[test]
    fn cumulative_and_best_static() {
        let rounds = vec![vec![1.0, 0.0], vec![1.0, 2.0], vec![0.0, 0.0]];
        assert_eq!(cumulative_losses(&rounds), vec![2.0, 2.0]);
        let (i, l) = best_static_expert(&rounds).unwrap();
        assert_eq!(i, 0); // tie broken by min_by keeping the first minimum
        assert_eq!(l, 2.0);
        assert_eq!(best_static_expert(&[]), None);
    }

    #[test]
    fn switching_comparator_beats_static_on_switching_data() {
        // Expert 0 best in first half, expert 1 best in second.
        let mut rounds = Vec::new();
        for _ in 0..10 {
            rounds.push(vec![0.0, 1.0]);
        }
        for _ in 0..10 {
            rounds.push(vec![1.0, 0.0]);
        }
        let static_best = best_static_expert(&rounds).unwrap().1;
        let switch0 = best_switching_sequence(&rounds, 0).unwrap();
        let switch1 = best_switching_sequence(&rounds, 1).unwrap();
        assert_eq!(static_best, 10.0);
        assert_eq!(switch0, static_best); // k=0 is the static comparator
        assert_eq!(switch1, 0.0); // one switch captures both phases
    }

    #[test]
    fn fixed_share_regret_is_small_against_switching_comparator() {
        // Mixture-loss regret of Fixed-Share vs the best 1-switch sequence
        // on a two-phase stream. The Herbster–Warmuth bound is
        // O(log n + k log T); with n = 4, T = 200 that is single digits.
        let mut rounds = Vec::new();
        for _ in 0..100 {
            rounds.push(vec![0.0, 1.0, 1.0, 1.0]);
        }
        for _ in 0..100 {
            rounds.push(vec![1.0, 1.0, 0.0, 1.0]);
        }
        let mut f = FixedShare::new(4, 0.02);
        let mut total = 0.0;
        for r in &rounds {
            total += f.update(r);
        }
        let comparator = best_switching_sequence(&rounds, 1).unwrap();
        let regret = total - comparator;
        assert!(regret >= 0.0, "mixture loss cannot beat the offline optimum here");
        assert!(regret < 10.0, "regret {regret} too large");
    }

    #[test]
    fn static_regret_of_exponential_weights_is_logarithmic() {
        let rounds: Vec<Vec<f64>> = (0..500).map(|_| vec![0.1, 0.9, 0.5]).collect();
        let mut f = FixedShare::new(3, 0.0);
        let mut total = 0.0;
        for r in &rounds {
            total += f.update(r);
        }
        let regret = static_regret(total, &rounds).unwrap();
        assert!(regret >= 0.0);
        assert!(regret <= (3.0f64).ln() + 1e-9, "EW regret bound violated: {regret}");
    }

    #[test]
    #[should_panic(expected = "inconsistent expert count")]
    fn rejects_ragged_loss_matrix() {
        cumulative_losses(&[vec![1.0, 2.0], vec![1.0]]);
    }
}
