//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the `criterion` 0.5 API the workspace's
//! benches use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs timed
//! batches until `measurement_time` elapses (default 300 ms — small, so
//! `cargo test` finishes fast; tune per group with
//! [`BenchmarkGroup::measurement_time`]). Results print as median
//! ns/iteration with the spread that makes regressions detectable in
//! CI logs — the median absolute deviation (MAD, a robust ±) and the
//! p05/p95 sample percentiles — plus derived throughput when one was
//! declared. There is no plotting or baseline persistence — this is a
//! smoke-measurement harness that keeps bench code compiling and gives
//! order-of-magnitude numbers with honest error bars.
//!
//! Passing `--test` (what `cargo test` does for harness-less bench
//! targets) switches to a single-iteration sanity run.
//!
//! Passing `--json <path>` additionally writes every benchmark's
//! statistics to `<path>` as a JSON object keyed by benchmark label
//! (`{"group/bench": {"median_ns": …, "mad_ns": …, "p05_ns": …,
//! "p95_ns": …}, …}`) so CI can archive the numbers as an artifact
//! instead of scraping them out of the log. In `--test` mode each
//! entry holds the single sanity iteration's wall time.

#![forbid(unsafe_code)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// `--json <path>` destination, shared by every group in the binary.
static JSON_PATH: Mutex<Option<String>> = Mutex::new(None);
/// Every finished benchmark's statistics, in execution order.
static RESULTS: Mutex<Vec<(String, Stats)>> = Mutex::new(Vec::new());

/// Workload magnitude declared for a benchmark, used to derive
/// throughput from the measured time per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How batched setup output is sized (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier (name, or name + parameter).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id combining a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// An id that is just a parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher<'a> {
    samples: &'a mut Vec<f64>,
    test_mode: bool,
    measurement_time: Duration,
}

impl Bencher<'_> {
    /// Times `routine` repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
            return;
        }
        // Warm-up: one call, also used to size the timed batches.
        let warm = Instant::now();
        std::hint::black_box(routine());
        let once = warm.elapsed().as_secs_f64().max(1e-9);
        let batch = ((0.01 / once) as usize).clamp(1, 1_000_000);
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed * 1e9 / batch as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup untimed).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
            return;
        }
        let deadline = Instant::now() + self.measurement_time;
        while Instant::now() < deadline {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64() * 1e9);
        }
    }
}

/// Robust sample statistics of one benchmark's per-iteration times.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Stats {
    median: f64,
    /// Median absolute deviation from the median — a robust spread
    /// estimate that one GC pause or scheduler hiccup cannot inflate.
    mad: f64,
    p05: f64,
    p95: f64,
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // Nearest-rank on the sorted samples; exact enough for a smoke
    // harness and stable for tiny sample counts.
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn stats(samples: &mut [f64]) -> Stats {
    if samples.is_empty() {
        return Stats { median: 0.0, mad: 0.0, p05: 0.0, p95: 0.0 };
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = samples[samples.len() / 2];
    let mut deviations: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Stats {
        median,
        mad: deviations[deviations.len() / 2],
        p05: percentile_sorted(samples, 0.05),
        p95: percentile_sorted(samples, 0.95),
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn report(label: &str, stats: Stats, throughput: Option<Throughput>, test_mode: bool) {
    if test_mode {
        println!("bench {label:<40} ok (test mode)");
        return;
    }
    let ns_per_iter = stats.median;
    let mut line = format!(
        "bench {label:<40} {:>12}/iter ±{} MAD  [p05 {}, p95 {}]",
        human_time(ns_per_iter),
        human_time(stats.mad),
        human_time(stats.p05),
        human_time(stats.p95),
    );
    if let Some(t) = throughput {
        let per_sec = match t {
            Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / ns_per_iter * 1e3),
            Throughput::Bytes(n) => {
                format!("{:.3} MiB/s", n as f64 / ns_per_iter * 1e9 / (1 << 20) as f64)
            }
        };
        line.push_str(&format!("  {per_sec:>16}"));
    }
    println!("{line}");
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { test_mode: false, measurement_time: Duration::from_millis(300) }
    }
}

impl Criterion {
    /// Applies command-line configuration: `--test` → sanity mode,
    /// `--json <path>` → write per-benchmark statistics to `<path>`
    /// when the binary finishes ([`criterion_main!`] flushes).
    pub fn configure_from_args(mut self) -> Criterion {
        let args: Vec<String> = std::env::args().collect();
        self.test_mode = args.iter().any(|a| a == "--test");
        if let Some(at) = args.iter().position(|a| a == "--json") {
            let path = args.get(at + 1).unwrap_or_else(|| {
                eprintln!("criterion: --json requires a path argument");
                std::process::exit(2);
            });
            *JSON_PATH.lock().unwrap() = Some(path.clone());
        }
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Benchmarks one routine.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(id.label.clone(), self.test_mode, self.measurement_time, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: None,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: String,
    test_mode: bool,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut samples = Vec::new();
    let mut bencher = Bencher { samples: &mut samples, test_mode, measurement_time };
    f(&mut bencher);
    let stats = stats(&mut samples);
    RESULTS.lock().unwrap().push((label.clone(), stats));
    report(&label, stats, throughput, test_mode);
}

/// Writes the accumulated statistics to the `--json` path, if one was
/// given. Called by [`criterion_main!`] after every group has run; a
/// bench binary with a custom `main` may call it directly.
pub fn flush_json() {
    let Some(path) = JSON_PATH.lock().unwrap().clone() else { return };
    let results = RESULTS.lock().unwrap();
    let mut out = String::from("{\n");
    for (i, (label, s)) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "  {:?}: {{\"median_ns\": {:.3}, \"mad_ns\": {:.3}, \
             \"p05_ns\": {:.3}, \"p95_ns\": {:.3}}}{comma}\n",
            label, s.median, s.mad, s.p05, s.p95,
        ));
    }
    out.push_str("}\n");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("criterion: failed to write --json {path}: {e}");
        std::process::exit(2);
    }
    println!("bench statistics written to {path}");
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Accepted for API compatibility; sampling is time-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(
            format!("{}/{}", self.name, id.label),
            self.criterion.test_mode,
            self.measurement_time.unwrap_or(self.criterion.measurement_time),
            self.throughput,
            f,
        );
        self
    }

    /// Benchmarks one routine with an explicit input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Prevents the optimizer from eliding a value (re-export convenience).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group function that runs the listed benchmarks.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::flush_json();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_and_reports() {
        let mut c = Criterion { test_mode: false, measurement_time: Duration::from_millis(5) };
        let mut runs = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn groups_support_throughput_and_batched() {
        let mut c = Criterion { test_mode: true, measurement_time: Duration::from_millis(5) };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(128));
        group.bench_function(BenchmarkId::from_parameter(4), |b| b.iter(|| 2 + 2));
        group.bench_with_input(BenchmarkId::new("n", 7), &7u64, |b, &n| {
            b.iter_batched(|| n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn ids_format_as_expected() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }

    #[test]
    fn stats_report_median_mad_and_percentiles() {
        // 1..=100: median (index 50 of 0-based sorted) = 51, MAD = 25,
        // p05 at round(99*0.05)=5 → 6, p95 at round(99*0.95)=94 → 95.
        let mut samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = stats(&mut samples);
        assert_eq!(s.median, 51.0);
        assert_eq!(s.mad, 25.0);
        assert_eq!(s.p05, 6.0);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn mad_is_robust_to_outliers() {
        // One wild outlier moves the mean by ~10x but leaves the MAD
        // small — the property that makes the ± usable in CI.
        let mut samples = vec![10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9_999.0];
        let s = stats(&mut samples);
        assert_eq!(s.median, 10.1);
        assert!(s.mad <= 0.5, "MAD {} blew up on an outlier", s.mad);
        assert_eq!(s.p95, 9_999.0);
    }

    #[test]
    fn stats_degenerate_inputs() {
        assert_eq!(stats(&mut []).median, 0.0);
        let one = stats(&mut [7.0]);
        assert_eq!((one.median, one.mad, one.p05, one.p95), (7.0, 0.0, 7.0, 7.0));
    }

    #[test]
    fn flush_json_writes_every_recorded_label() {
        let path = std::env::temp_dir()
            .join(format!("criterion-json-{}.json", std::process::id()))
            .display()
            .to_string();
        RESULTS
            .lock()
            .unwrap()
            .push(("g/json_probe".into(), Stats { median: 12.5, mad: 0.5, p05: 11.0, p95: 14.0 }));
        *JSON_PATH.lock().unwrap() = Some(path.clone());
        flush_json();
        *JSON_PATH.lock().unwrap() = None;
        let written = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(written.starts_with("{\n") && written.ends_with("}\n"), "{written}");
        assert!(
            written.contains(
                "\"g/json_probe\": {\"median_ns\": 12.500, \"mad_ns\": 0.500, \
                 \"p05_ns\": 11.000, \"p95_ns\": 14.000}"
            ),
            "{written}"
        );
    }

    #[test]
    fn flush_json_without_a_path_is_a_no_op() {
        flush_json(); // must not panic or write anywhere
    }
}
