//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of the `proptest` 1.x API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//!   [`prop_assert!`] and [`prop_assert_eq!`];
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer and
//!   float ranges, tuples, and [`prop::collection::vec`];
//! * [`test_runner::ProptestConfig`] / [`test_runner::TestRunner`].
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//! no shrinking (failures report the case number and seed instead of a
//! minimized input) and no persistence files. Case generation is fully
//! deterministic: case `i` of every test derives its RNG from a fixed
//! base seed, so failures reproduce exactly across runs and machines.

#![forbid(unsafe_code)]

/// Strategies: how to generate values of a type.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (subset of `proptest::strategy::Strategy`).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// A strategy producing a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// The `prop::` namespace (`proptest::prelude::prop`).
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// The uniform boolean strategy value (`prop::bool::ANY`).
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.random::<bool>()
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Allowed lengths of a generated collection.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_exclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> SizeRange {
                SizeRange { lo: n, hi_exclusive: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> SizeRange {
                assert!(r.start < r.end, "empty vec size range");
                SizeRange { lo: r.start, hi_exclusive: r.end }
            }
        }

        /// A strategy for `Vec<S::Value>` with length drawn from `size`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates vectors whose elements come from `element` and whose
        /// length is drawn from `size` (a `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy { element, size: size.into() }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let len = if self.size.lo + 1 == self.size.hi_exclusive {
                    self.size.lo
                } else {
                    rng.random_range(self.size.lo..self.size.hi_exclusive)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Test-runner plumbing used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration (subset of upstream's).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Debug)]
    pub struct TestCaseError {
        /// Human-readable failure description.
        pub message: String,
    }

    impl TestCaseError {
        /// Constructs a failure.
        pub fn fail(message: String) -> TestCaseError {
            TestCaseError { message }
        }
    }

    /// Runs the cases of one property test.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner.
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `case` once per configured case with a deterministic
        /// per-case RNG; panics (failing the host `#[test]`) on the first
        /// case error.
        pub fn run(
            &mut self,
            name: &str,
            mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
        ) {
            // Mix the test name into the stream so distinct tests explore
            // distinct inputs, deterministically.
            let name_hash = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            });
            for i in 0..self.config.cases {
                let seed = name_hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i as u64 + 1));
                let mut rng = StdRng::seed_from_u64(seed);
                if let Err(e) = case(&mut rng) {
                    panic!(
                        "proptest case {}/{} of `{}` failed (reproduce with seed {:#x}):\n{}",
                        i + 1,
                        self.config.cases,
                        name,
                        seed,
                        e.message
                    );
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests (subset of upstream's `proptest!` macro).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(stringify!($name), |__proptest_rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
    )*};
}

/// Asserts a condition inside a property test, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", &l, &r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3i64..17, y in 0.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..1.0).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose(
            v in prop::collection::vec((0u32..10, prop::bool::ANY).prop_map(|(n, b)| if b { n } else { 0 }), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&n| n < 10));
        }

        #[test]
        fn fixed_size_vecs(v in prop::collection::vec(0.0f64..10.0, 8)) {
            prop_assert_eq!(v.len(), 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Doc comments and extra attributes must pass through.
        #[test]
        fn config_override_applies(x in 0u8..=255) {
            let _ = x;
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        proptest! {
            // No #[test] here: invoked directly below to observe the panic.
            #[allow(dead_code)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
