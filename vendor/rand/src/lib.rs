//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements exactly the subset of the `rand` 0.9 API the
//! workspace uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / [`Rng`] traits with `random`,
//!   `random_range` and `random_bool`;
//! * [`rngs::StdRng`], a deterministic, seedable generator
//!   (xoshiro256++ seeded via SplitMix64);
//! * uniform range sampling for the integer types and `f64`.
//!
//! Determinism contract: `StdRng::seed_from_u64(s)` produces the same
//! stream on every platform and every run. The workspace's synthetic
//! datasets and fleet scenarios rely on that bit-stability (it does NOT
//! match upstream `rand`'s ChaCha12 stream, which is fine — nothing here
//! depends on upstream's exact values, only on internal reproducibility).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random `u64`s (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from an RNG's raw bits.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample (subset of
/// `rand::distr::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire-style widening multiply keeps the integer sampling unbiased
// enough for simulation workloads while staying branch-free.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + sample_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + sample_u64_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`] type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush, and — unlike upstream's ChaCha12 —
    /// trivially auditable. Streams are a pure function of the seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_samples_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.random_range(-5i64..17);
            assert!((-5..17).contains(&x));
            let y = rng.random_range(3u32..=12);
            assert!((3..=12).contains(&y));
            let z = rng.random_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn range_samples_cover_small_ranges() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unsized_rng_core_is_object_safe_enough() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.random::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
