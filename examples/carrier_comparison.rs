//! How carrier RRC configurations change the picture (§6.5).
//!
//! The same workload costs very different energy on different networks:
//! T-Mobile's 19.5 s of timers versus Verizon LTE's single 10.2 s timer,
//! promotion delays from 0.6 s to 3.6 s. This example sweeps the paper's
//! four measured carriers (plus the two estimated Sprint presets) with the
//! same email-sync workload and reports what MakeIdle can reclaim on each.
//!
//! Run with: `cargo run --release --example carrier_comparison`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tailwise::prelude::*;
use tailwise::trace::Duration;
use tailwise::workload::AppKind;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let trace = AppKind::Email.default_model().generate(Duration::from_secs(7200), &mut rng);
    println!("workload : {} (2 h of periodic email sync)\n", trace.summary());

    println!(
        "{:<14} {:>6} {:>6} {:>9} {:>11} {:>11} {:>10}",
        "carrier", "t1", "t2", "t_thresh", "status-quo", "makeidle", "saved"
    );
    let config = SimConfig::default();
    for profile in CarrierProfile::all_presets() {
        let base = Scheme::StatusQuo.run(&profile, &config, &trace);
        let mi = Scheme::MakeIdle.run(&profile, &config, &trace);
        println!(
            "{:<14} {:>5.1}s {:>5.1}s {:>8.2}s {:>10.1}J {:>10.1}J {:>9.1}%",
            profile.name,
            profile.t1.as_secs_f64(),
            profile.t2.as_secs_f64(),
            profile.t_threshold().as_secs_f64(),
            base.total_energy(),
            mi.total_energy(),
            mi.savings_vs(&base)
        );
    }

    println!("\nLonger timers mean longer tails — and more for MakeIdle to reclaim;");
    println!("shorter promotion delays (LTE) make each reclaimed tail cheaper to cut.");
}
