//! A whole phone for a day: several applications sharing one radio.
//!
//! Builds a realistic one-day user trace (background IM + email + news,
//! foreground social sessions with a diurnal profile), then walks through
//! the full §6 evaluation for it: energy per scheme, signaling overhead,
//! decision quality against the Oracle, and the session delays MakeActive
//! introduces.
//!
//! Run with: `cargo run --release --example multi_app_phone`

use tailwise::prelude::*;
use tailwise::workload::UserModel;

fn main() {
    // One of the paper-population users, scaled to a single day.
    let user = UserModel::verizon_3g_users()[0].scaled_to_days(1);
    let trace = user.generate();
    println!("user     : {}", user.name);
    println!("workload : {}", trace.summary());
    let apps = trace.apps();
    println!(
        "apps     : {} distinct, {:?} packets each",
        apps.len(),
        apps.iter().map(|(_, c)| *c).collect::<Vec<_>>()
    );

    let profile = CarrierProfile::verizon_3g();
    let config = SimConfig::default();
    let baseline = Scheme::StatusQuo.run(&profile, &config, &trace);

    println!(
        "\n{:<28} {:>10} {:>8} {:>10} {:>8} {:>8}",
        "scheme", "energy(J)", "saved", "switches", "FP%", "FN%"
    );
    for scheme in [
        Scheme::StatusQuo,
        Scheme::FixedTail45,
        Scheme::PercentileIat(0.95),
        Scheme::MakeIdle,
        Scheme::Oracle,
        Scheme::MakeIdleActiveFix,
        Scheme::MakeIdleActiveLearn,
    ] {
        let r = scheme.run(&profile, &config, &trace);
        println!(
            "{:<28} {:>10.0} {:>7.1}% {:>10} {:>8.1} {:>8.1}",
            r.scheme,
            r.total_energy(),
            r.savings_vs(&baseline),
            r.switch_cycles(),
            r.confusion.false_switch_rate() * 100.0,
            r.confusion.missed_switch_rate() * 100.0,
        );
    }

    // MakeActive's cost: how long did background sessions wait?
    let learn = Scheme::MakeIdleActiveLearn.run(&profile, &config, &trace);
    println!(
        "\nMakeActive (learning) delayed {} sessions over {} rounds: mean {:.2} s, median {:.2} s",
        learn.session_delays.len(),
        learn.batching_rounds,
        learn.mean_session_delay(),
        learn.median_session_delay()
    );
    println!(
        "…and returned signaling to {:.2}x the status quo (plain MakeIdle: {:.2}x).",
        learn.normalized_switches(&baseline),
        Scheme::MakeIdle.run(&profile, &config, &trace).normalized_switches(&baseline)
    );

    // Who was actually burning the battery? (per-app attribution)
    let attr = tailwise::sim::attribution::attribute(&profile, &config, &trace);
    println!("\nper-app energy blame (status quo):");
    for a in &attr.apps {
        let name = tailwise::workload::AppKind::ALL
            .iter()
            .find(|k| k.id() == a.app)
            .map(|k| k.name())
            .unwrap_or("?");
        println!(
            "  {:<10} {:>8.0} J ({:>4.1}%)  [data {:>6.0} J, tail {:>7.0} J]",
            name,
            a.energy.total(),
            attr.share(a.app) * 100.0,
            a.energy.data(),
            a.energy.tail(),
        );
    }
    println!("(heartbeat apps own the tail; bulk apps own the data — the paper's Figure 1)");
}
