//! Quickstart: how much battery does traffic-aware RRC control save a
//! chatty background app?
//!
//! Synthesizes two hours of instant-messenger traffic (heartbeats every
//! 5–20 s — the §6.1 IM model), then compares the carrier's status-quo
//! inactivity timers against MakeIdle and the offline-optimal Oracle on
//! AT&T's measured HSPA+ profile.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tailwise::prelude::*;
use tailwise::trace::Duration;
use tailwise::workload::AppKind;

fn main() {
    // 1. Workload: 2 h of IM heartbeats + occasional chats.
    let mut rng = StdRng::seed_from_u64(42);
    let trace = AppKind::Im.default_model().generate(Duration::from_secs(7200), &mut rng);
    println!("workload : {}", trace.summary());

    // 2. Radio: AT&T HSPA+ as measured in the paper (Table 2).
    let profile = CarrierProfile::att_hspa();
    println!(
        "carrier  : {} (t1={}, t2={}, t_threshold={})",
        profile.name,
        profile.t1,
        profile.t2,
        profile.t_threshold()
    );

    // 3. Simulate the schemes.
    let config = SimConfig::default();
    let baseline = Scheme::StatusQuo.run(&profile, &config, &trace);
    println!("\n{:<28} {:>10} {:>9} {:>9}", "scheme", "energy (J)", "saved", "switches");
    for scheme in [
        Scheme::StatusQuo,
        Scheme::FixedTail45,
        Scheme::MakeIdle,
        Scheme::Oracle,
        Scheme::MakeIdleActiveLearn,
    ] {
        let r = scheme.run(&profile, &config, &trace);
        println!(
            "{:<28} {:>10.1} {:>8.1}% {:>9}",
            r.scheme,
            r.total_energy(),
            r.savings_vs(&baseline),
            r.switch_cycles()
        );
    }

    // 4. Where did the status-quo energy go? (the Figure 1 decomposition)
    let (data, dch, fach, switch) = baseline.energy.fractions();
    println!(
        "\nstatus-quo breakdown: data {:.0}%, DCH tail {:.0}%, FACH tail {:.0}%, switches {:.0}%",
        data * 100.0,
        dch * 100.0,
        fach * 100.0,
        switch * 100.0
    );
    println!("…which is the paper's point: the tail dominates, and MakeIdle reclaims it.");
}
