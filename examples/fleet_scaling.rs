//! Population-scale simulation with `tailwise-fleet`: the same scenario
//! at several thread counts, demonstrating the two properties the fleet
//! subsystem guarantees:
//!
//! 1. **Determinism** — the aggregate report is bit-identical at every
//!    thread count (hierarchical seeding + fixed shard reduction order);
//! 2. **Scalability** — wall-clock drops as threads are added, reported
//!    as user-days simulated per second.
//!
//! Run with: `cargo run --release --example fleet_scaling`

use tailwise::fleet::{run, Scenario};
use tailwise::prelude::*;

fn main() {
    let mut scenario = Scenario::new(256, Scheme::MakeIdle, CarrierProfile::verizon_lte());
    scenario.master_seed = 42;
    println!("scenario : {}\n", scenario.name);

    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut reports: Vec<FleetReport> = Vec::new();
    println!("{:>8} {:>10} {:>16} {:>14}", "threads", "wall (s)", "user-days/sec", "agg saved");
    for threads in [1, 2, max] {
        let r = run(&scenario, threads);
        println!(
            "{:>8} {:>10.2} {:>16.1} {:>13.1}%",
            threads,
            r.wall_seconds,
            r.user_days_per_sec(),
            r.aggregate_savings_pct()
        );
        reports.push(r);
    }

    // Bit-identical across thread counts: FleetReport equality compares
    // every floating-point aggregate exactly.
    assert!(reports.windows(2).all(|w| w[0] == w[1]));
    println!("\nall {} reports are bit-identical — determinism holds.\n", reports.len());

    let fleet = &reports[0];
    print!("{}", fleet.render());
    println!(
        "\nthe per-user savings spread (p5 {:.0}% … p95 {:.0}%) is what single-trace",
        fleet.savings.percentile(0.05).unwrap_or(0.0),
        fleet.savings.percentile(0.95).unwrap_or(0.0),
    );
    println!("evaluation cannot show: tail-energy reclaim depends on each user's app mix.");
}
