//! Trace tooling tour: generate, persist, reload, and dissect a capture.
//!
//! Shows the `tailwise-trace` substrate end to end: deterministic workload
//! synthesis, CSV and binary round-trips, burst segmentation, inter-arrival
//! statistics (including the 95%-IAT statistic the paper's baseline uses),
//! and fault injection.
//!
//! Run with: `cargo run --release --example trace_tools`

use rand::rngs::StdRng;
use rand::SeedableRng;
use tailwise::sim::faults;
use tailwise::trace::bursts;
use tailwise::trace::stats::EmpiricalDist;
use tailwise::trace::{io, Duration};
use tailwise::workload::AppKind;

fn main() {
    // 1. Generate a half-hour news-reader capture.
    let mut rng = StdRng::seed_from_u64(2026);
    let trace = AppKind::News.default_model().generate(Duration::from_secs(1800), &mut rng);
    println!("generated : {}", trace.summary());

    // 2. Round-trip through both on-disk formats.
    let dir = std::env::temp_dir().join("tailwise-trace-tools");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let csv = dir.join("news.csv");
    let bin = dir.join("news.twt");
    io::save(&trace, &csv).expect("save csv");
    io::save(&trace, &bin).expect("save binary");
    let csv_size = std::fs::metadata(&csv).expect("csv metadata").len();
    let bin_size = std::fs::metadata(&bin).expect("bin metadata").len();
    let back = io::load(&bin).expect("reload binary");
    assert_eq!(back, trace);
    println!("persisted : csv {csv_size} B, binary {bin_size} B (lossless round-trip)");

    // 3. Burst structure.
    let bs = bursts::segment_default(&trace);
    let stats = bursts::stats(&bs).expect("non-empty trace");
    println!(
        "bursts    : {} bursts, mean {:.1} packets, mean inter-burst gap {:.1} s",
        stats.count,
        stats.mean_len,
        stats.mean_interburst_gap.as_secs_f64()
    );

    // 4. Inter-arrival statistics — the raw material of every scheme.
    let dist = EmpiricalDist::from_samples(trace.gaps());
    for q in [0.50, 0.90, 0.95, 0.99] {
        let v = dist.quantile(q).expect("non-empty distribution");
        println!("IAT p{:<3} : {:>10.4} s", (q * 100.0) as u32, v.as_secs_f64());
    }
    println!("(p95 is what the paper's '95% IAT' baseline would use as its timer)");

    // 5. Fault injection: how robust is the burst structure to jitter?
    let jittered = faults::jitter_timestamps(&trace, 1, Duration::from_millis(50));
    let jittered_bursts = bursts::segment_default(&jittered).len();
    println!(
        "faults    : +/-50 ms jitter changes burst count {} -> {}",
        stats.count, jittered_bursts
    );
    let dropped = faults::drop_packets(&trace, 2, 0.15);
    println!(
        "          : 15% loss keeps {}/{} packets; burst count {}",
        dropped.len(),
        trace.len(),
        bursts::segment_default(&dropped).len()
    );

    std::fs::remove_dir_all(&dir).ok();
}
