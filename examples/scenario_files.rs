//! The on-disk scenario format end to end: parse a scenario from text,
//! round-trip it through a file, and expand a sweep file from the
//! curated `scenarios/` library into a side-by-side comparison table.
//!
//! Run with: `cargo run --release --example scenario_files`

use tailwise::fleet::{run, run_sweep, Scenario, ScenarioSet};

fn main() {
    // 1. A scenario is just text — shareable, diffable, reviewable.
    //    (Full key-by-key spec: docs/SCENARIO_FORMAT.md.)
    let text = r#"
[scenario]
name = "inline demo"
users = 24
scheme = "makeidle"
master_seed = 7
shard_size = 8

[[carrier]]
profile = "verizon-lte"

[[app]]
kind = "im"
weight = 3.0

[[app]]
kind = "finance"
weight = 1.0
"#;
    let scenario = Scenario::from_toml_str(text).expect("inline scenario parses");
    let report = run(&scenario, 4);
    println!("{}", report.render());

    // 2. Round-trip: to_file → from_file reproduces the scenario
    //    exactly, so written files are first-class experiment artifacts.
    let path = std::env::temp_dir().join("tailwise_example_scenario.toml");
    scenario.to_file(&path).expect("scenario serializes");
    let reloaded = Scenario::from_file(&path).expect("written file parses");
    assert_eq!(reloaded, scenario, "on-disk round trip is lossless");
    std::fs::remove_file(&path).ok();
    println!("round trip through {} was lossless\n", path.display());

    // 3. Parse errors carry line and column, compiler-style.
    let err = Scenario::from_toml_str("[scenario]\nusers = \"many\"\n").unwrap_err();
    println!("typed errors point at the problem: {err}\n");

    // 4. A sweep file from the curated library: one file, many runs,
    //    one table. (Users are scaled down here to keep the example
    //    quick; drop the override to reproduce the full shape.)
    let sweep_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios/scheme_sweep_fig10.toml");
    let mut set = ScenarioSet::from_file(sweep_path).expect("library sweep file parses");
    set.base.users = 8;
    set.base.shard_size = 4;
    println!("expanding {} into {} scenarios…\n", set.base.name, set.expansion_count());
    let sweep = run_sweep(&set, 4);
    print!("{}", sweep.render());

    // Every cell is bit-identical to running its expansion alone — the
    // comparison table is evidence, not approximation.
    let third = &sweep.rows[3];
    let scenario = third.scenario().expect("scheme sweeps expand to synthetic scenarios");
    assert_eq!(third.report, run(scenario, 1));
    println!("\nspot check: row {:?} reproduces bit-for-bit standalone", third.label);
}
