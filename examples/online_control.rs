//! Driving the deployable control module (Figure 4) event by event.
//!
//! This is what an OS socket-layer shim would do: report every socket call
//! to the [`ControlModule`], arm a timer for `poll_at()`, and obey the
//! returned actions (fast-dormancy requests, session holds/releases). The
//! example scripts a believable evening: background heartbeats warm the
//! predictor, the radio is demoted between them, and two app syncs that
//! arrive while idle get batched into a single promotion.
//!
//! Run with: `cargo run --release --example online_control`

use tailwise::core::control::{Action, ControlModule, SocketEvent};
use tailwise::prelude::*;
use tailwise::trace::{Duration, Instant};

fn show(actions: &[Action], now: Instant) {
    for a in actions {
        match a {
            Action::RequestFastDormancy => {
                println!("{now}  -> modem: fast-dormancy request (radio to IDLE)")
            }
            Action::HoldSession { flow, release_at } => {
                println!("{now}  -> hold session flow={flow} until {release_at}")
            }
            Action::ReleaseSessions { flows } => {
                println!("{now}  -> release {} batched session(s): {flows:?}", flows.len())
            }
        }
    }
}

fn main() {
    let profile = CarrierProfile::att_hspa();
    let mut module = ControlModule::with_batching(profile);

    println!("== phase 1: background heartbeats warm the predictor ==");
    let mut now = Instant::ZERO;
    for i in 0..25 {
        now = Instant::from_secs(i * 30);
        let actions = module.on_event(now, 1, SocketEvent::Recv { bytes: 96 });
        show(&actions, now);
    }

    // The predictor has seen 30 s gaps; after the last packet it arms a
    // short fast-dormancy timer.
    let deadline = module.poll_at().expect("fast-dormancy timer armed");
    println!("\npredictor armed fast dormancy for {deadline} (last packet {now})");
    now = deadline;
    show(&module.poll(now), now);
    assert!(module.radio_idle());

    println!("\n== phase 2: two app syncs arrive while idle — batched ==");
    now += Duration::from_secs(40);
    let a = module.on_event(now, 7, SocketEvent::Connect);
    show(&a, now);
    now += Duration::from_secs(2);
    let b = module.on_event(now, 8, SocketEvent::Connect);
    show(&b, now);
    println!("  ({} sessions held)", module.held_sessions());

    let release = module.poll_at().expect("batching release pending");
    now = release;
    show(&module.poll(now), now);
    println!(
        "\nboth sessions share one Idle→Active promotion — the §5 batching\n\
         win — and traffic from them will re-arm the demotion predictor."
    );
}
